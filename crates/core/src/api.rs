//! The user-facing DASHMM API.
//!
//! End users configure a kernel, a method, accuracy, and a (virtual)
//! machine; no knowledge of the runtime is required — the second design
//! objective of DASHMM (paper §I).

use std::sync::Arc;
use std::time::Instant;

use dashmm_amt::{ObsLevel, PeerFailure, RunReport, Runtime, RuntimeConfig, Transport};
use dashmm_dag::{
    BlockPolicy, Dag, DagStats, DistributionPolicy, FmmPolicy, NodeClass, SingleLocality,
};
use dashmm_expansion::{AccuracyParams, OperatorLibrary};
use dashmm_kernels::Kernel;
use dashmm_tree::{BuildParams, Point3};

use crate::assemble::{assemble, Assembly};
use crate::exec::{ExecCtx, RecoveryStats, SchedPolicy};
use crate::problem::{block_owner, Method, Problem};

/// Which distribution policy assigns DAG nodes to localities.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Everything on locality 0.
    Single,
    /// Nodes follow their box owner.
    Block,
    /// The paper's FMM policy (leaf pinning + communication-aware `It`
    /// placement).
    Fmm,
}

/// Builder for a DASHMM evaluation.
pub struct DashmmBuilder<K: Kernel> {
    kernel: K,
    method: Method,
    accuracy: AccuracyParams,
    threshold: usize,
    localities: usize,
    workers: usize,
    schedule: SchedPolicy,
    obs: ObsLevel,
    gradients: bool,
    policy: Policy,
    transport: Option<Arc<dyn Transport>>,
    recover: bool,
}

impl<K: Kernel> DashmmBuilder<K> {
    /// Start a builder with the paper's defaults: advanced FMM, 3-digit
    /// accuracy, refinement threshold 60, one locality with two workers.
    pub fn new(kernel: K) -> Self {
        DashmmBuilder {
            kernel,
            method: Method::AdvancedFmm,
            accuracy: AccuracyParams::three_digit(),
            threshold: 60,
            localities: 1,
            workers: 2,
            schedule: SchedPolicy::Fifo,
            obs: ObsLevel::Off,
            gradients: false,
            policy: Policy::Fmm,
            transport: None,
            recover: false,
        }
    }

    /// Select the method.
    pub fn method(mut self, m: Method) -> Self {
        self.method = m;
        self
    }

    /// Select the accuracy preset.
    pub fn accuracy(mut self, a: AccuracyParams) -> Self {
        self.accuracy = a;
        self
    }

    /// Tree refinement threshold (paper: 60).
    pub fn threshold(mut self, t: usize) -> Self {
        assert!(t >= 1);
        self.threshold = t;
        self
    }

    /// Number of localities and workers per locality.
    pub fn machine(mut self, localities: usize, workers_per_locality: usize) -> Self {
        assert!(localities >= 1 && workers_per_locality >= 1);
        self.localities = localities;
        self.workers = workers_per_locality;
        self
    }

    /// Enable the binary critical-path priority (the paper's proposal).
    /// Shorthand for [`DashmmBuilder::schedule`] with
    /// [`SchedPolicy::Binary`] / [`SchedPolicy::Fifo`].
    pub fn priority(mut self, on: bool) -> Self {
        self.schedule = if on {
            SchedPolicy::Binary
        } else {
            SchedPolicy::Fifo
        };
        self
    }

    /// Select the scheduling policy: FIFO, the paper's binary priority,
    /// or the computed priority lattice (optionally warmed by a previous
    /// run's per-operator timings).
    pub fn schedule(mut self, p: SchedPolicy) -> Self {
        self.schedule = p;
        self
    }

    /// Record operator traces (paper §V-B).  Shorthand for
    /// [`DashmmBuilder::obs`] with [`ObsLevel::Full`] / [`ObsLevel::Off`].
    pub fn tracing(mut self, on: bool) -> Self {
        self.obs = if on { ObsLevel::Full } else { ObsLevel::Off };
        self
    }

    /// Select the observability level: `Off` (no instrumentation),
    /// `Counters` (per-class tallies, no spans), or `Full` (span traces
    /// for timeline export and critical-path analysis).
    pub fn obs(mut self, level: ObsLevel) -> Self {
        self.obs = level;
        self
    }

    /// Also compute field gradients (∂φ/∂x, ∂φ/∂y, ∂φ/∂z) at the targets.
    /// Only the target-side evaluation operators change; the expansions and
    /// the DAG are identical.
    pub fn gradients(mut self, on: bool) -> Self {
        self.gradients = on;
        self
    }

    /// Select the distribution policy.
    pub fn policy(mut self, p: Policy) -> Self {
        self.policy = p;
        self
    }

    /// Survive a locality failure: when the transport convicts and fences
    /// a dead peer mid-run, re-own its DAG nodes across the survivors,
    /// replay the orphaned slice, and finish the evaluation with correct
    /// results instead of returning partial output.  Requires a fencing
    /// transport (e.g. `dashmm-net` with `DASHMM_RECOVER=1`); losing
    /// rank 0 or a second rank during recovery is out of scope.
    pub fn recover(mut self, on: bool) -> Self {
        self.recover = on;
        self
    }

    /// Run the localities over an explicit [`Transport`] (e.g. a
    /// `dashmm-net` socket transport in a multi-process run).  Overrides
    /// the locality count given to [`DashmmBuilder::machine`] with the
    /// transport's world size; every process must build the identical
    /// evaluation (SPMD), and each hosts only its own rank's workers.
    pub fn transport(mut self, t: Arc<dyn Transport>) -> Self {
        self.localities = t.num_ranks() as usize;
        self.transport = Some(t);
        self
    }

    /// Build the trees, assemble and distribute the explicit DAG, and stand
    /// up the runtime.  The returned [`Evaluation`] can be evaluated
    /// repeatedly (the paper's iterative use case).
    pub fn build(self, sources: &[Point3], charges: &[f64], targets: &[Point3]) -> Evaluation<K> {
        let t0 = Instant::now();
        let problem = Arc::new(Problem::new(
            sources,
            charges,
            targets,
            BuildParams {
                threshold: self.threshold,
                max_level: 20,
            },
        ));
        let tree_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = Instant::now();
        let lib = Arc::new(OperatorLibrary::new(
            self.kernel,
            self.accuracy,
            problem.tree.domain().side(),
            self.method.uses_planewave(),
        ));
        let mut asm = assemble(&problem, self.method, &lib);
        let dag_ms = t1.elapsed().as_secs_f64() * 1e3;

        // Distribution.
        let n_loc = self.localities as u32;
        {
            let problem = Arc::clone(&problem);
            let owner = move |class: NodeClass, box_id: u32| -> u32 {
                let (tree, n) = match class {
                    NodeClass::S | NodeClass::M | NodeClass::Is => {
                        (problem.tree.source(), problem.tree.source().points().len())
                    }
                    _ => (problem.tree.target(), problem.tree.target().points().len()),
                };
                block_owner(tree.node(box_id).first, n, n_loc)
            };
            match self.policy {
                Policy::Single => SingleLocality.assign(&mut asm.dag, n_loc, &owner),
                Policy::Block => BlockPolicy.assign(&mut asm.dag, n_loc, &owner),
                Policy::Fmm => FmmPolicy::default().assign(&mut asm.dag, n_loc, &owner),
            }
        }

        let rt_cfg = RuntimeConfig {
            localities: self.localities,
            workers_per_locality: self.workers,
            priority_scheduling: self.schedule.graded(),
            obs: self.obs,
        };
        let runtime = match self.transport {
            Some(t) => Runtime::with_transport(rt_cfg, t),
            None => Runtime::new(rt_cfg),
        };
        Evaluation {
            problem,
            lib,
            asm: Arc::new(asm),
            runtime,
            schedule: self.schedule,
            gradients: self.gradients,
            recover: self.recover,
            tree_ms,
            dag_ms,
        }
    }
}

/// Fold a fenced first run's counters into its recovery run's report so
/// the caller sees one evaluation's totals.  The recovery run's trace is
/// kept (the fenced run's spans are dropped); the wall-clock anchor stays
/// the first run's.
fn merge_reports(first: &RunReport, mut second: RunReport) -> RunReport {
    second.wall_ns += first.wall_ns;
    second.tasks += first.tasks;
    second.messages += first.messages;
    second.bytes += first.bytes;
    second.trace_dropped += first.trace_dropped;
    for (s, f) in second.counters.0.iter_mut().zip(first.counters.0.iter()) {
        s.count += f.count;
        s.total_ns += f.total_ns;
    }
    second.run_start_unix_ns = first.run_start_unix_ns;
    second
}

/// A ready-to-run DASHMM evaluation.
pub struct Evaluation<K: Kernel> {
    problem: Arc<Problem>,
    lib: Arc<OperatorLibrary<K>>,
    asm: Arc<Assembly>,
    runtime: Arc<Runtime>,
    schedule: SchedPolicy,
    gradients: bool,
    recover: bool,
    /// Milliseconds spent building the dual tree.
    pub tree_ms: f64,
    /// Milliseconds spent assembling the explicit DAG.
    pub dag_ms: f64,
}

/// What a completed recovery did (see [`DashmmBuilder::recover`]).
#[derive(Clone, Copy, Debug)]
pub struct RecoveryInfo {
    /// The convicted peer: rank, termination epoch and conviction reason.
    pub failure: PeerFailure,
    /// DAG slice rebuilt on this process.
    pub stats: RecoveryStats,
    /// Duplicate edge applications swallowed by the exactly-once bitmap.
    pub dedup_skipped: u64,
    /// Milliseconds of the fenced first run (detection included).
    pub first_run_ms: f64,
    /// Milliseconds from conviction handling to recovered quiescence
    /// (re-ownership, replay, and the recovery run).
    pub recovery_ms: f64,
}

/// The result of one evaluation.
pub struct EvalOutput {
    /// Potentials, one per target, in the caller's original order.
    pub potentials: Vec<f64>,
    /// Field gradients per target (when requested via
    /// [`DashmmBuilder::gradients`]).
    pub gradients: Option<Vec<[f64; 3]>>,
    /// Runtime statistics (tasks, messages, trace).
    pub report: RunReport,
    /// Milliseconds spent in DAG evaluation (LCO allocation excluded).
    pub eval_ms: f64,
    /// Present when a locality failed mid-run and the survivors recovered
    /// the evaluation ([`DashmmBuilder::recover`]): the potentials are
    /// complete despite `report.lost_peer` being set.  `None` with
    /// `report.lost_peer` set means the output is partial.
    pub recovery: Option<RecoveryInfo>,
    /// FNV-1a fingerprint of the computed lattice ranks under
    /// [`SchedPolicy::Lattice`] (`None` otherwise).  Identical on every
    /// SPMD process and in the simulator modelling the same DAG — the
    /// pipeline CI lane's sim/measured parity check compares these.
    pub lattice_fingerprint: Option<u64>,
}

impl<K: Kernel> Evaluation<K> {
    /// Run one DAG evaluation with the charges given at build time.
    pub fn evaluate(&self) -> EvalOutput {
        self.evaluate_morton(self.problem.charges.clone())
    }

    /// Re-run the evaluation with *new* charges — the paper's iterative use
    /// case (§IV): the trees, interaction lists, operator tables, explicit
    /// DAG, and distribution are all reused; only the LCO network is
    /// re-instantiated.  `charges` are in the caller's original source
    /// order.
    pub fn evaluate_with_charges(&self, charges: &[f64]) -> EvalOutput {
        assert_eq!(
            charges.len(),
            self.problem.tree.source().points().len(),
            "one charge per source"
        );
        let permuted: Vec<f64> = self
            .problem
            .tree
            .source()
            .permutation()
            .iter()
            .map(|&i| charges[i as usize])
            .collect();
        self.evaluate_morton(permuted)
    }

    fn evaluate_morton(&self, charges_morton: Vec<f64>) -> EvalOutput {
        // Each evaluation instantiates a fresh LCO network; drop the
        // previous one so iterative use does not accumulate memory.
        self.runtime.reset();
        let exec = ExecCtx::new(
            Arc::clone(&self.problem),
            Arc::clone(&self.lib),
            Arc::clone(&self.asm),
            self.schedule.clone(),
            self.gradients,
            charges_morton,
        );
        exec.install(&self.runtime);
        exec.seed(&self.runtime);
        let t0 = Instant::now();
        let mut report = self.runtime.run();
        let mut recovery = None;
        if self.recover && report.fenced {
            if let Some(failure) = report.lost_peer {
                let first_run_ms = t0.elapsed().as_secs_f64() * 1e3;
                let tr = Instant::now();
                let stats = exec.prepare_recovery(&self.runtime, failure.rank);
                let rep2 = self.runtime.run();
                // A *different* rank dying during recovery is out of
                // scope: report the partial run.  Re-observing the same
                // dead rank in the recovery run is benign (the conviction
                // poll can race survivor quiescence).
                let second_failure = rep2.lost_peer.is_some_and(|f2| f2.rank != failure.rank);
                let merged = merge_reports(&report, rep2);
                report = merged;
                if second_failure {
                    eprintln!(
                        "dashmm: second locality failure during recovery ({}); giving up",
                        report.lost_peer.map(|f| f.rank).unwrap_or(u32::MAX)
                    );
                } else {
                    report.lost_peer = Some(failure);
                    report.fenced = true;
                    recovery = Some(RecoveryInfo {
                        failure,
                        stats,
                        dedup_skipped: exec.dedup_skipped(),
                        first_run_ms,
                        recovery_ms: tr.elapsed().as_secs_f64() * 1e3,
                    });
                }
            }
        }
        let eval_ms = t0.elapsed().as_secs_f64() * 1e3;
        let lattice_fingerprint = exec.lattice_fingerprint();
        let (pot, grad) = exec.extract(&self.runtime);
        EvalOutput {
            potentials: self.problem.unsort_potentials(&pot),
            gradients: grad.map(|g| {
                let mut out = vec![[0.0; 3]; g.len()];
                for (sorted_idx, &orig) in
                    self.problem.tree.target().permutation().iter().enumerate()
                {
                    out[orig as usize] = g[sorted_idx];
                }
                out
            }),
            report,
            eval_ms,
            recovery,
            lattice_fingerprint,
        }
    }

    /// The explicit DAG.
    pub fn dag(&self) -> &Dag {
        &self.asm.dag
    }

    /// DAG statistics (paper Tables I and II).
    pub fn dag_stats(&self) -> DagStats {
        DagStats::compute(&self.asm.dag)
    }

    /// The underlying problem.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// The operator library.
    pub fn library(&self) -> &OperatorLibrary<K> {
        &self.lib
    }

    /// The runtime (for custom inspection).
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.runtime
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dashmm_kernels::{direct_sum, Laplace, Yukawa};
    use dashmm_tree::{sphere_surface, uniform_cube};

    fn p3(points: &[Point3]) -> Vec<[f64; 3]> {
        points.iter().map(|p| [p.x, p.y, p.z]).collect()
    }

    /// Relative L2 error of `got` versus the direct oracle.
    fn rel_err(got: &[f64], want: &[f64]) -> f64 {
        let num: f64 = got.iter().zip(want).map(|(a, b)| (a - b) * (a - b)).sum();
        let den: f64 = want.iter().map(|b| b * b).sum();
        (num / den).sqrt()
    }

    fn accuracy_case<K: Kernel>(kernel: K, method: Method, n: usize, sphere: bool) -> f64 {
        let sources = if sphere {
            sphere_surface(n, 11)
        } else {
            uniform_cube(n, 11)
        };
        let targets = if sphere {
            sphere_surface(n, 22)
        } else {
            uniform_cube(n, 22)
        };
        let charges: Vec<f64> = (0..n)
            .map(|i| if i % 3 == 0 { 1.0 } else { -0.5 })
            .collect();
        let eval = DashmmBuilder::new(kernel.clone())
            .method(method)
            .threshold(20)
            .machine(2, 2)
            .build(&sources, &charges, &targets);
        let out = eval.evaluate();
        let want = direct_sum(&kernel, &p3(&sources), &charges, &p3(&targets), 0);
        rel_err(&out.potentials, &want)
    }

    #[test]
    fn advanced_fmm_laplace_cube_three_digits() {
        let e = accuracy_case(Laplace, Method::AdvancedFmm, 1500, false);
        assert!(e < 1e-3, "relative error {e:.2e}");
    }

    #[test]
    fn advanced_fmm_yukawa_cube() {
        let e = accuracy_case(Yukawa::new(1.0), Method::AdvancedFmm, 1500, false);
        assert!(e < 1e-3, "relative error {e:.2e}");
    }

    #[test]
    fn basic_fmm_laplace_sphere() {
        let e = accuracy_case(Laplace, Method::BasicFmm, 1500, true);
        assert!(e < 1e-3, "relative error {e:.2e}");
    }

    #[test]
    fn barnes_hut_moderate_accuracy() {
        let e = accuracy_case(Laplace, Method::BarnesHut { theta: 0.5 }, 1200, false);
        // BH with multipole-only expansions: coarser than FMM but controlled.
        assert!(e < 5e-3, "relative error {e:.2e}");
    }

    #[test]
    fn priority_mode_same_answer() {
        let n = 800;
        let sources = uniform_cube(n, 1);
        let targets = uniform_cube(n, 2);
        let charges = vec![1.0; n];
        let base = DashmmBuilder::new(Laplace)
            .threshold(20)
            .build(&sources, &charges, &targets)
            .evaluate();
        let prio = DashmmBuilder::new(Laplace)
            .threshold(20)
            .priority(true)
            .build(&sources, &charges, &targets)
            .evaluate();
        let e = rel_err(&prio.potentials, &base.potentials);
        assert!(e < 1e-12, "priority must not change results: {e:.2e}");
    }

    #[test]
    fn lattice_mode_same_answer_and_fingerprint() {
        use dashmm_dag::LatticeHint;
        let n = 800;
        let sources = uniform_cube(n, 1);
        let targets = uniform_cube(n, 2);
        let charges = vec![1.0; n];
        let base = DashmmBuilder::new(Laplace)
            .threshold(20)
            .machine(2, 2)
            .build(&sources, &charges, &targets);
        let lat = DashmmBuilder::new(Laplace)
            .threshold(20)
            .machine(2, 2)
            .schedule(SchedPolicy::Lattice(LatticeHint::uniform()))
            .build(&sources, &charges, &targets);
        let b = base.evaluate();
        let a = lat.evaluate();
        let e = rel_err(&a.potentials, &b.potentials);
        assert!(e < 1e-12, "lattice must not change results: {e:.2e}");
        assert!(b.lattice_fingerprint.is_none());
        let fp = a.lattice_fingerprint.expect("lattice mode fingerprints");
        // The ranks are a pure function of the DAG: re-evaluating (and a
        // separately built identical evaluation) reproduces the value.
        assert_eq!(lat.evaluate().lattice_fingerprint, Some(fp));
        let again = DashmmBuilder::new(Laplace)
            .threshold(20)
            .machine(2, 2)
            .schedule(SchedPolicy::Lattice(LatticeHint::uniform()))
            .build(&sources, &charges, &targets)
            .evaluate();
        assert_eq!(again.lattice_fingerprint, Some(fp));
    }

    #[test]
    fn multi_locality_matches_single() {
        let n = 1000;
        let sources = uniform_cube(n, 7);
        let targets = uniform_cube(n, 8);
        let charges: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
        let single = DashmmBuilder::new(Laplace)
            .threshold(25)
            .machine(1, 2)
            .build(&sources, &charges, &targets)
            .evaluate();
        let multi = DashmmBuilder::new(Laplace)
            .threshold(25)
            .machine(4, 1)
            .build(&sources, &charges, &targets)
            .evaluate();
        let e = rel_err(&multi.potentials, &single.potentials);
        assert!(e < 1e-12, "distribution must not change results: {e:.2e}");
        assert!(
            multi.report.messages > 0,
            "multi-locality run must communicate"
        );
        assert_eq!(single.report.messages, 0);
    }

    #[test]
    fn tracing_produces_operator_events() {
        let n = 600;
        let sources = uniform_cube(n, 3);
        let targets = uniform_cube(n, 4);
        let charges = vec![1.0; n];
        let out = DashmmBuilder::new(Laplace)
            .threshold(20)
            .tracing(true)
            .build(&sources, &charges, &targets)
            .evaluate();
        assert!(!out.report.trace.is_empty(), "trace events expected");
        // The trace must contain up-sweep, bridge and down-sweep classes.
        let classes: std::collections::HashSet<u8> =
            out.report.trace.all_events().map(|e| e.class).collect();
        assert!(
            classes.len() >= 4,
            "expected several operator classes, got {classes:?}"
        );
    }

    #[test]
    fn repeated_evaluation_is_deterministic() {
        let n = 500;
        let sources = uniform_cube(n, 5);
        let targets = uniform_cube(n, 6);
        let charges = vec![1.0; n];
        let eval = DashmmBuilder::new(Laplace)
            .threshold(20)
            .build(&sources, &charges, &targets);
        let a = eval.evaluate();
        let b = eval.evaluate();
        for (x, y) in a.potentials.iter().zip(&b.potentials) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}
