//! Sampled accuracy verification against the exact O(N²) oracle.
//!
//! Checking every target directly would cost the O(N²) the FMM exists to
//! avoid; sampling a few hundred targets estimates the error well because
//! the FMM error is statistically homogeneous across targets at fixed
//! tree geometry.

use dashmm_kernels::{direct_sum_at, Kernel};
use dashmm_tree::Point3;

/// Result of a sampled accuracy check.
#[derive(Clone, Debug)]
pub struct AccuracyReport {
    /// Number of targets sampled.
    pub sampled: usize,
    /// Relative L2 error over the sample.
    pub rel_l2: f64,
    /// Worst pointwise error relative to the RMS potential (robust when
    /// potentials cross zero).
    pub max_rel_rms: f64,
    /// RMS of the exact sampled potentials.
    pub rms_potential: f64,
}

impl AccuracyReport {
    /// Whether the sampled error meets an accuracy target.
    pub fn meets(&self, eps: f64) -> bool {
        self.rel_l2 <= eps
    }
}

/// Compare computed potentials against direct summation on an evenly
/// spaced sample of `sample` targets.
pub fn check_accuracy<K: Kernel>(
    kernel: &K,
    sources: &[Point3],
    charges: &[f64],
    targets: &[Point3],
    potentials: &[f64],
    sample: usize,
) -> AccuracyReport {
    assert_eq!(targets.len(), potentials.len(), "one potential per target");
    assert!(sample > 0, "sample size must be positive");
    let src: Vec<[f64; 3]> = sources.iter().map(|p| [p.x, p.y, p.z]).collect();
    let step = (targets.len() / sample).max(1);
    let mut num = 0.0;
    let mut den = 0.0;
    let mut diffs = Vec::new();
    let mut count = 0;
    for i in (0..targets.len()).step_by(step) {
        let t = [targets[i].x, targets[i].y, targets[i].z];
        let exact = direct_sum_at(kernel, &src, charges, &t);
        let d = potentials[i] - exact;
        num += d * d;
        den += exact * exact;
        diffs.push(d.abs());
        count += 1;
    }
    let rms = (den / count as f64).sqrt();
    AccuracyReport {
        sampled: count,
        rel_l2: (num / den.max(f64::MIN_POSITIVE)).sqrt(),
        max_rel_rms: diffs.iter().cloned().fold(0.0, f64::max) / rms.max(f64::MIN_POSITIVE),
        rms_potential: rms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dashmm_kernels::Laplace;
    use dashmm_tree::uniform_cube;

    #[test]
    fn exact_potentials_report_zero_error() {
        let sources = uniform_cube(200, 1);
        let targets = uniform_cube(50, 2);
        let charges = vec![1.0; 200];
        let src: Vec<[f64; 3]> = sources.iter().map(|p| [p.x, p.y, p.z]).collect();
        let potentials: Vec<f64> = targets
            .iter()
            .map(|t| direct_sum_at(&Laplace, &src, &charges, &[t.x, t.y, t.z]))
            .collect();
        let r = check_accuracy(&Laplace, &sources, &charges, &targets, &potentials, 25);
        assert!(r.rel_l2 < 1e-14);
        assert!(r.meets(1e-3));
        assert_eq!(r.sampled, 25);
    }

    #[test]
    fn perturbed_potentials_report_the_perturbation() {
        let sources = uniform_cube(100, 3);
        let targets = uniform_cube(40, 4);
        let charges = vec![1.0; 100];
        let src: Vec<[f64; 3]> = sources.iter().map(|p| [p.x, p.y, p.z]).collect();
        let exact: Vec<f64> = targets
            .iter()
            .map(|t| direct_sum_at(&Laplace, &src, &charges, &[t.x, t.y, t.z]))
            .collect();
        let perturbed: Vec<f64> = exact.iter().map(|p| p * 1.01).collect();
        let r = check_accuracy(&Laplace, &sources, &charges, &targets, &perturbed, 40);
        assert!((r.rel_l2 - 0.01).abs() < 1e-3, "rel_l2 = {}", r.rel_l2);
        assert!(!r.meets(1e-3));
    }
}
