//! Explicit-DAG assembly from the dual tree and interaction lists.
//!
//! This implements the paper's DAG generation (§IV): every source box gets a
//! multipole (`M`) node if anything consumes it, every target box a local
//! (`L`) node if anything produces into it, leaves get `S`/`T` data nodes,
//! and — in the advanced method — source boxes get outgoing-intermediate
//! (`Is`) and target boxes incoming-intermediate (`It`) nodes connected by
//! diagonal `I→I` translations.
//!
//! **Merge-and-shift.**  The `L2` list of a target box is partitioned by
//! direction; within a direction, entries sharing a source parent `P` are
//! merged: each member's outgoing expansion is shifted once to `P`'s center
//! (an `I→I` edge into a *merged slot* of `Is(P)`, exact algebra), and a
//! single `I→I` translation then serves the whole group.  Slots are keyed by
//! `(P, direction, member mask)` and shared across all target boxes seeing
//! the same group, which is what reduces the per-box translation count from
//! up to 189 toward the ~40 the paper cites.

use std::collections::{BTreeMap, HashMap};

use dashmm_dag::{Dag, DagBuilder, EdgeOp, NodeClass};
use dashmm_expansion::OperatorLibrary;
use dashmm_kernels::Kernel;
use dashmm_tree::{Direction, InteractionLists, Octree};

use crate::problem::{Method, Problem};

/// Data layout of an `Is` node: six own-direction regions (width `own_w`
/// each, possibly zero) followed by `n_merged` merged slots (width
/// `merged_w` each, in the *child*-level basis).  Widths are in `f64`s.
#[derive(Clone, Copy, Debug, Default)]
pub struct IsLayout {
    /// Width of one own-direction region (0 when the box has no direct
    /// translations).
    pub own_w: u32,
    /// Width of one merged slot (child-level plane-wave length).
    pub merged_w: u32,
    /// Number of merged slots.
    pub n_merged: u32,
}

impl IsLayout {
    /// Offset of the own region for a direction.
    pub fn own_offset(&self, dir: usize) -> usize {
        debug_assert!(self.own_w > 0, "own region absent");
        dir * self.own_w as usize
    }

    /// Offset of merged slot `k`.
    pub fn merged_offset(&self, k: u32) -> usize {
        debug_assert!(k < self.n_merged);
        6 * self.own_w as usize + (k * self.merged_w) as usize
    }

    /// Total data length in `f64`s.
    pub fn total_len(&self) -> usize {
        6 * self.own_w as usize + (self.n_merged * self.merged_w) as usize
    }
}

/// Pack an `I→I` edge tag: 4 bits direction, 14 bits source slot (0 = own
/// region, `k+1` = merged slot `k`), 14 bits destination slot (direction
/// index for translations into `It`, merged slot index for merge shifts).
pub fn pack_i2i(dir: usize, src_slot: u32, dst_slot: u32) -> u32 {
    debug_assert!(dir < 16 && src_slot < (1 << 14) && dst_slot < (1 << 14));
    dir as u32 | (src_slot << 4) | (dst_slot << 18)
}

/// Unpack an `I→I` edge tag.
pub fn unpack_i2i(tag: u32) -> (usize, u32, u32) {
    (
        (tag & 0xf) as usize,
        (tag >> 4) & 0x3fff,
        (tag >> 18) & 0x3fff,
    )
}

/// The assembled explicit DAG plus the box↔node correspondence the executor
/// needs to instantiate the implicit (LCO) DAG.
pub struct Assembly {
    /// The explicit DAG.
    pub dag: Dag,
    /// DAG node id per source box for `S` (−1 = absent), and likewise below.
    pub s_of: Vec<i32>,
    /// `M` node per source box.
    pub m_of: Vec<i32>,
    /// `Is` node per source box.
    pub is_of: Vec<i32>,
    /// `It` node per target box.
    pub it_of: Vec<i32>,
    /// `L` node per target box.
    pub l_of: Vec<i32>,
    /// `T` node per target box.
    pub t_of: Vec<i32>,
    /// Layout of each `Is` node (indexed by DAG node id).
    pub is_layout: HashMap<u32, IsLayout>,
}

impl Assembly {
    /// All seed nodes (zero in-degree, nonzero out-degree).
    pub fn seeds(&self) -> Vec<u32> {
        self.dag
            .sources()
            .into_iter()
            .filter(|&i| self.dag.node(i).out_degree > 0)
            .collect()
    }
}

struct MergedSlotInfo {
    /// Slot index within the parent's `Is` node.
    slot: u32,
    /// Member source boxes (children of the parent).
    members: Vec<u32>,
    dir: Direction,
}

/// Assemble the explicit DAG for a problem and method.
pub fn assemble<K: Kernel>(
    problem: &Problem,
    method: Method,
    lib: &OperatorLibrary<K>,
) -> Assembly {
    let src = problem.tree.source();
    let tgt = problem.tree.target();
    let lists = problem.tree.interaction_lists();
    match method {
        Method::BarnesHut { theta } => assemble_bh(problem, theta, lib),
        _ => assemble_fmm(problem, method, lib, src, tgt, &lists),
    }
}

#[allow(clippy::too_many_lines)]
fn assemble_fmm<K: Kernel>(
    _problem: &Problem,
    method: Method,
    lib: &OperatorLibrary<K>,
    src: &Octree,
    tgt: &Octree,
    lists: &InteractionLists,
) -> Assembly {
    let ns = src.num_nodes();
    let nt = tgt.num_nodes();
    let advanced = method.uses_planewave();
    let n_exp = lib.params().surface_points();
    let exp_bytes = (n_exp * 8) as u32;
    let pw_len = |level: u8| lib.tables(level).planewave_len() as u32;

    // ---- Analysis pass -------------------------------------------------
    let mut m_direct = vec![false; ns];
    let mut s_used = vec![false; ns];
    let mut is_own = vec![false; ns];
    let mut it_needed = vec![false; nt];
    let mut l_direct = vec![false; nt];
    // Merged slots per source parent box.
    let mut merged_count = vec![0u32; ns];
    // BTreeMaps keep slot and edge creation order deterministic across
    // processes (HashMap order varies with the hasher seed, which would
    // reorder floating-point reductions between otherwise identical runs).
    let mut merged_slots: BTreeMap<(u32, u8, u8), MergedSlotInfo> = BTreeMap::new();
    // Translations: (src_box, src_slot, dir, tgt_box).
    let mut trans: Vec<(u32, u32, Direction, u32)> = Vec::new();

    let mut groups: BTreeMap<(u8, u32), Vec<u32>> = BTreeMap::new();
    for t in 0..nt as u32 {
        let bl = lists.of(t);
        for &s in &bl.l1 {
            s_used[s as usize] = true;
        }
        for &s in &bl.l4 {
            s_used[s as usize] = true;
            l_direct[t as usize] = true;
        }
        for &s in &bl.l3 {
            m_direct[s as usize] = true;
        }
        if bl.l2.is_empty() {
            continue;
        }
        l_direct[t as usize] = true;
        if !advanced {
            for e in &bl.l2 {
                m_direct[e.source as usize] = true;
            }
            continue;
        }
        it_needed[t as usize] = true;
        groups.clear();
        for e in &bl.l2 {
            let parent = src.node(e.source).parent;
            debug_assert!(parent >= 0, "L2 sources are at level ≥ 2");
            // The list records where the source sits relative to the
            // target; the expansion must propagate the opposite way.
            let dir = e.direction.opposite();
            groups
                .entry((dir.index() as u8, parent as u32))
                .or_default()
                .push(e.source);
        }
        for ((dir_idx, parent), members) in std::mem::take(&mut groups) {
            let dir = Direction::ALL[dir_idx as usize];
            if members.len() >= 2 {
                let mut mask = 0u8;
                for &m in &members {
                    mask |= 1 << src.node(m).key.octant();
                }
                let info = merged_slots
                    .entry((parent, dir_idx, mask))
                    .or_insert_with(|| {
                        let slot = merged_count[parent as usize];
                        merged_count[parent as usize] += 1;
                        for &m in &members {
                            is_own[m as usize] = true;
                        }
                        MergedSlotInfo {
                            slot,
                            members: members.clone(),
                            dir,
                        }
                    });
                trans.push((parent, info.slot + 1, dir, t));
            } else {
                let s = members[0];
                is_own[s as usize] = true;
                trans.push((s, 0, dir, t));
            }
        }
    }
    // Own outgoing expansions are formed from the multipole.
    for b in 0..ns {
        if is_own[b] {
            m_direct[b] = true;
        }
    }
    // M is needed wherever an ancestor needs it (children feed parents).
    let mut m_needed = m_direct;
    for b in 0..ns {
        let p = src.node(b as u32).parent;
        if p >= 0 && m_needed[p as usize] {
            m_needed[b] = true;
        }
    }
    for b in 0..ns {
        if m_needed[b] && src.node(b as u32).is_leaf() {
            s_used[b] = true;
        }
    }
    // L content flows down the target tree.
    let mut has_l = vec![false; nt];
    for t in 0..nt {
        let p = tgt.node(t as u32).parent;
        has_l[t] = l_direct[t] || it_needed[t] || (p >= 0 && has_l[p as usize]);
    }

    // ---- Node creation -------------------------------------------------
    let mut b = DagBuilder::new();
    let mut s_of = vec![-1i32; ns];
    let mut m_of = vec![-1i32; ns];
    let mut is_of = vec![-1i32; ns];
    let mut it_of = vec![-1i32; nt];
    let mut l_of = vec![-1i32; nt];
    let mut t_of = vec![-1i32; nt];
    let mut is_layout = HashMap::new();

    for s in 0..ns as u32 {
        let node = src.node(s);
        if node.is_leaf() && s_used[s as usize] {
            s_of[s as usize] =
                b.add_node(NodeClass::S, s, node.key.level, 32 * node.count as u32) as i32;
        }
    }
    for s in 0..ns as u32 {
        if m_needed[s as usize] {
            m_of[s as usize] = b.add_node(NodeClass::M, s, src.node(s).key.level, exp_bytes) as i32;
        }
    }
    if advanced {
        for s in 0..ns as u32 {
            let own = is_own[s as usize];
            let nm = merged_count[s as usize];
            if !own && nm == 0 {
                continue;
            }
            let level = src.node(s).key.level;
            let layout = IsLayout {
                own_w: if own { pw_len(level) } else { 0 },
                merged_w: if nm > 0 { pw_len(level + 1) } else { 0 },
                n_merged: nm,
            };
            let id = b.add_node(NodeClass::Is, s, level, (layout.total_len() * 8) as u32);
            is_of[s as usize] = id as i32;
            is_layout.insert(id, layout);
        }
        for t in 0..nt as u32 {
            if it_needed[t as usize] {
                let level = tgt.node(t).key.level;
                it_of[t as usize] =
                    b.add_node(NodeClass::It, t, level, 6 * pw_len(level) * 8) as i32;
            }
        }
    }
    for t in 0..nt as u32 {
        if has_l[t as usize] {
            l_of[t as usize] = b.add_node(NodeClass::L, t, tgt.node(t).key.level, exp_bytes) as i32;
        }
    }
    for t in 0..nt as u32 {
        let node = tgt.node(t);
        if node.is_leaf() {
            t_of[t as usize] =
                b.add_node(NodeClass::T, t, node.key.level, 40 * node.count as u32) as i32;
        }
    }

    // ---- Edges -----------------------------------------------------------
    for s in 0..ns as u32 {
        let node = src.node(s);
        // S→M.
        if s_of[s as usize] >= 0 && m_of[s as usize] >= 0 {
            b.add_edge(
                s_of[s as usize] as u32,
                EdgeOp::S2M,
                m_of[s as usize] as u32,
                exp_bytes,
                0,
            );
        }
        // M→M.
        let p = node.parent;
        if m_of[s as usize] >= 0 && p >= 0 && m_of[p as usize] >= 0 {
            b.add_edge(
                m_of[s as usize] as u32,
                EdgeOp::M2M,
                m_of[p as usize] as u32,
                exp_bytes,
                node.key.octant() as u32,
            );
        }
        // M→I.
        if is_of[s as usize] >= 0 {
            let layout = is_layout[&(is_of[s as usize] as u32)];
            if layout.own_w > 0 {
                debug_assert!(m_of[s as usize] >= 0);
                b.add_edge(
                    m_of[s as usize] as u32,
                    EdgeOp::M2I,
                    is_of[s as usize] as u32,
                    6 * layout.own_w * 8,
                    0,
                );
            }
        }
    }
    // Merge shifts: member own region → parent merged slot.
    for ((parent, _dir_idx, _mask), info) in &merged_slots {
        let dst = is_of[*parent as usize];
        debug_assert!(dst >= 0);
        let layout = is_layout[&(dst as u32)];
        for &m in &info.members {
            let src_is = is_of[m as usize];
            debug_assert!(src_is >= 0);
            b.add_edge(
                src_is as u32,
                EdgeOp::I2I,
                dst as u32,
                layout.merged_w * 8,
                pack_i2i(info.dir.index(), 0, info.slot),
            );
        }
    }
    // Translations into It nodes.
    for &(sbox, src_slot, dir, tbox) in &trans {
        let s_is = is_of[sbox as usize];
        let d_it = it_of[tbox as usize];
        debug_assert!(s_is >= 0 && d_it >= 0);
        let w = {
            let layout = is_layout[&(s_is as u32)];
            if src_slot == 0 {
                layout.own_w
            } else {
                layout.merged_w
            }
        };
        b.add_edge(
            s_is as u32,
            EdgeOp::I2I,
            d_it as u32,
            w * 8,
            pack_i2i(dir.index(), src_slot, dir.index() as u32),
        );
    }
    for t in 0..nt as u32 {
        let bl = lists.of(t);
        // I→L.
        if it_of[t as usize] >= 0 {
            debug_assert!(l_of[t as usize] >= 0);
            b.add_edge(
                it_of[t as usize] as u32,
                EdgeOp::I2L,
                l_of[t as usize] as u32,
                exp_bytes,
                0,
            );
        }
        // M→L (basic method).
        if !advanced {
            for e in &bl.l2 {
                b.add_edge(
                    m_of[e.source as usize] as u32,
                    EdgeOp::M2L,
                    l_of[t as usize] as u32,
                    exp_bytes,
                    0,
                );
            }
        }
        // S→L (list 4).
        for &s in &bl.l4 {
            b.add_edge(
                s_of[s as usize] as u32,
                EdgeOp::S2L,
                l_of[t as usize] as u32,
                exp_bytes,
                0,
            );
        }
        // M→T (list 3).
        for &s in &bl.l3 {
            b.add_edge(
                m_of[s as usize] as u32,
                EdgeOp::M2T,
                t_of[t as usize] as u32,
                exp_bytes,
                0,
            );
        }
        // S→T (list 1).
        for &s in &bl.l1 {
            b.add_edge(
                s_of[s as usize] as u32,
                EdgeOp::S2T,
                t_of[t as usize] as u32,
                32 * src.node(s).count as u32,
                0,
            );
        }
        // L→L and L→T.
        let node = tgt.node(t);
        if l_of[t as usize] >= 0 {
            let p = node.parent;
            if p >= 0 && l_of[p as usize] >= 0 {
                b.add_edge(
                    l_of[p as usize] as u32,
                    EdgeOp::L2L,
                    l_of[t as usize] as u32,
                    exp_bytes,
                    node.key.octant() as u32,
                );
            }
            if node.is_leaf() {
                b.add_edge(
                    l_of[t as usize] as u32,
                    EdgeOp::L2T,
                    t_of[t as usize] as u32,
                    8 * node.count as u32,
                    0,
                );
            }
        }
    }

    Assembly {
        dag: b.finish(),
        s_of,
        m_of,
        is_of,
        it_of,
        l_of,
        t_of,
        is_layout,
    }
}

/// Barnes–Hut assembly: an up-sweep of multipoles and, per target leaf, a
/// tree walk under the `θ` acceptance criterion yielding `M→T` and `S→T`
/// edges.
fn assemble_bh<K: Kernel>(problem: &Problem, theta: f64, lib: &OperatorLibrary<K>) -> Assembly {
    let src = problem.tree.source();
    let tgt = problem.tree.target();
    let ns = src.num_nodes();
    let nt = tgt.num_nodes();
    let n_exp = lib.params().surface_points();
    let exp_bytes = (n_exp * 8) as u32;

    // Per target leaf, collect accepted boxes / direct leaves.
    let mut m_direct = vec![false; ns];
    let mut s_used = vec![false; ns];
    // (target, source, is_multipole)
    let mut edges: Vec<(u32, u32, bool)> = Vec::new();
    let leaves = tgt.leaves();
    for &t in &leaves {
        let tc = tgt.center_of(t);
        let th = tgt.half_of(t);
        let mut stack = vec![0u32];
        while let Some(s) = stack.pop() {
            let node = src.node(s);
            let sc = src.center_of(s);
            let sh = src.half_of(s);
            let delta = sc - tc;
            // Max-norm distance from the source center to the target box.
            let gap = (delta.x.abs() - th)
                .max(delta.y.abs() - th)
                .max(delta.z.abs() - th);
            let dist = delta.norm();
            let accept = gap >= 2.96 * sh && 2.0 * sh <= theta * dist;
            if accept {
                m_direct[s as usize] = true;
                edges.push((t, s, true));
            } else if node.is_leaf() {
                s_used[s as usize] = true;
                edges.push((t, s, false));
            } else {
                stack.extend(node.child_ids());
            }
        }
    }
    let mut m_needed = m_direct;
    for s in 0..ns {
        let p = src.node(s as u32).parent;
        if p >= 0 && m_needed[p as usize] {
            m_needed[s] = true;
        }
    }
    for s in 0..ns {
        if m_needed[s] && src.node(s as u32).is_leaf() {
            s_used[s] = true;
        }
    }

    let mut b = DagBuilder::new();
    let mut s_of = vec![-1i32; ns];
    let mut m_of = vec![-1i32; ns];
    let mut t_of = vec![-1i32; nt];
    for s in 0..ns as u32 {
        let node = src.node(s);
        if node.is_leaf() && s_used[s as usize] {
            s_of[s as usize] =
                b.add_node(NodeClass::S, s, node.key.level, 32 * node.count as u32) as i32;
        }
    }
    for s in 0..ns as u32 {
        if m_needed[s as usize] {
            m_of[s as usize] = b.add_node(NodeClass::M, s, src.node(s).key.level, exp_bytes) as i32;
        }
    }
    for &t in &leaves {
        t_of[t as usize] = b.add_node(
            NodeClass::T,
            t,
            tgt.node(t).key.level,
            40 * tgt.node(t).count as u32,
        ) as i32;
    }
    for s in 0..ns as u32 {
        if s_of[s as usize] >= 0 && m_of[s as usize] >= 0 {
            b.add_edge(
                s_of[s as usize] as u32,
                EdgeOp::S2M,
                m_of[s as usize] as u32,
                exp_bytes,
                0,
            );
        }
        let p = src.node(s).parent;
        if m_of[s as usize] >= 0 && p >= 0 && m_of[p as usize] >= 0 {
            b.add_edge(
                m_of[s as usize] as u32,
                EdgeOp::M2M,
                m_of[p as usize] as u32,
                exp_bytes,
                src.node(s).key.octant() as u32,
            );
        }
    }
    for (t, s, multipole) in edges {
        if multipole {
            b.add_edge(
                m_of[s as usize] as u32,
                EdgeOp::M2T,
                t_of[t as usize] as u32,
                exp_bytes,
                0,
            );
        } else {
            b.add_edge(
                s_of[s as usize] as u32,
                EdgeOp::S2T,
                t_of[t as usize] as u32,
                32 * src.node(s).count as u32,
                0,
            );
        }
    }

    Assembly {
        dag: b.finish(),
        s_of,
        m_of,
        is_of: vec![-1; ns],
        it_of: vec![-1; nt],
        l_of: vec![-1; nt],
        t_of,
        is_layout: HashMap::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dashmm_expansion::AccuracyParams;
    use dashmm_kernels::Laplace;
    use dashmm_tree::{uniform_cube, BuildParams};

    fn build(n: usize, method: Method, threshold: usize) -> (Problem, Assembly) {
        let sources = uniform_cube(n, 11);
        let targets = uniform_cube(n, 22);
        let charges = vec![1.0; n];
        let problem = Problem::new(
            &sources,
            &charges,
            &targets,
            BuildParams {
                threshold,
                max_level: 20,
            },
        );
        let lib = OperatorLibrary::new(
            Laplace,
            AccuracyParams::three_digit(),
            problem.tree.domain().side(),
            method.uses_planewave(),
        );
        let asm = assemble(&problem, method, &lib);
        (problem, asm)
    }

    #[test]
    fn basic_fmm_dag_validates() {
        let (_, asm) = build(3000, Method::BasicFmm, 60);
        asm.dag.validate().expect("valid DAG");
        let stats = dashmm_dag::DagStats::compute(&asm.dag);
        assert!(stats.nodes[NodeClass::S.index()].count > 0);
        assert!(stats.nodes[NodeClass::M.index()].count > 0);
        assert!(stats.nodes[NodeClass::L.index()].count > 0);
        assert!(stats.nodes[NodeClass::T.index()].count > 0);
        assert_eq!(stats.nodes[NodeClass::Is.index()].count, 0);
        assert!(stats.edges[EdgeOp::M2L.index()].count > 0);
        assert_eq!(stats.edges[EdgeOp::I2I.index()].count, 0);
    }

    #[test]
    fn advanced_fmm_dag_validates_with_intermediates() {
        let (_, asm) = build(4000, Method::AdvancedFmm, 60);
        asm.dag.validate().expect("valid DAG");
        let stats = dashmm_dag::DagStats::compute(&asm.dag);
        assert!(stats.nodes[NodeClass::Is.index()].count > 0);
        assert!(stats.nodes[NodeClass::It.index()].count > 0);
        assert!(stats.edges[EdgeOp::M2I.index()].count > 0);
        assert!(stats.edges[EdgeOp::I2I.index()].count > 0);
        assert!(stats.edges[EdgeOp::I2L.index()].count > 0);
        assert_eq!(
            stats.edges[EdgeOp::M2L.index()].count,
            0,
            "advanced replaces M→L"
        );
    }

    #[test]
    fn merge_and_shift_reduces_translations() {
        let (problem, asm) = build(20000, Method::AdvancedFmm, 60);
        let lists = problem.tree.interaction_lists();
        let total_l2: usize = (0..problem.tree.target().num_nodes() as u32)
            .map(|t| lists.of(t).l2.len())
            .sum();
        let stats = dashmm_dag::DagStats::compute(&asm.dag);
        let i2i = stats.edges[EdgeOp::I2I.index()].count as usize;
        assert!(
            i2i * 2 < total_l2,
            "I→I edges ({i2i}) should be well below the raw L2 count ({total_l2})"
        );
    }

    #[test]
    fn every_l2_entry_served_exactly_once() {
        // Each L2 entry must be covered by exactly one translation path:
        // either a direct translation from its own Is, or membership in the
        // merged group of a translation from its parent's Is.
        let (problem, asm) = build(6000, Method::AdvancedFmm, 30);
        let src = problem.tree.source();
        let lists = problem.tree.interaction_lists();
        let nt = problem.tree.target().num_nodes();
        // covered[(source_box, target_box)] count.
        let mut covered: HashMap<(u32, u32), u32> = HashMap::new();
        // Decode translation edges.
        for id in 0..asm.dag.num_nodes() as u32 {
            let n = asm.dag.node(id);
            if n.class != NodeClass::Is {
                continue;
            }
            for e in asm.dag.out_edges(id) {
                if asm.dag.node(e.dst).class != NodeClass::It {
                    continue;
                }
                let (dir_idx, src_slot, _) = unpack_i2i(e.tag);
                let tbox = asm.dag.node(e.dst).box_id;
                if src_slot == 0 {
                    *covered.entry((n.box_id, tbox)).or_insert(0) += 1;
                } else {
                    // Find the members of this merged slot via merge edges
                    // into this Is node with the same dst slot.
                    for mid in 0..asm.dag.num_nodes() as u32 {
                        if asm.dag.node(mid).class != NodeClass::Is {
                            continue;
                        }
                        for me in asm.dag.out_edges(mid) {
                            if me.dst == id && me.op == EdgeOp::I2I {
                                let (mdir, _, dslot) = unpack_i2i(me.tag);
                                if dslot == src_slot - 1 && mdir == dir_idx {
                                    *covered
                                        .entry((asm.dag.node(mid).box_id, tbox))
                                        .or_insert(0) += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        let _ = src;
        for t in 0..nt as u32 {
            for e in &lists.of(t).l2 {
                let c = covered.get(&(e.source, t)).copied().unwrap_or(0);
                assert_eq!(
                    c, 1,
                    "L2 entry (src {}, tgt {t}) covered {c} times",
                    e.source
                );
            }
        }
    }

    #[test]
    fn barnes_hut_dag_shape() {
        let (_, asm) = build(3000, Method::BarnesHut { theta: 0.6 }, 60);
        asm.dag.validate().expect("valid DAG");
        let stats = dashmm_dag::DagStats::compute(&asm.dag);
        assert!(
            stats.edges[EdgeOp::M2T.index()].count > 0,
            "BH must use multipole evals"
        );
        assert!(stats.edges[EdgeOp::S2T.index()].count > 0);
        assert_eq!(
            stats.nodes[NodeClass::L.index()].count,
            0,
            "BH has no local expansions"
        );
        assert_eq!(stats.edges[EdgeOp::L2L.index()].count, 0);
    }

    #[test]
    fn seeds_are_s_nodes() {
        let (_, asm) = build(2000, Method::AdvancedFmm, 60);
        for seed in asm.seeds() {
            assert_eq!(asm.dag.node(seed).class, NodeClass::S);
        }
    }

    #[test]
    fn i2i_tag_roundtrip() {
        for (d, s, t) in [(0, 0, 0), (5, 1, 3), (3, 16383, 16383)] {
            assert_eq!(unpack_i2i(pack_i2i(d, s, t)), (d, s, t));
        }
    }

    #[test]
    fn layout_offsets() {
        let l = IsLayout {
            own_w: 10,
            merged_w: 6,
            n_merged: 3,
        };
        assert_eq!(l.own_offset(0), 0);
        assert_eq!(l.own_offset(5), 50);
        assert_eq!(l.merged_offset(0), 60);
        assert_eq!(l.merged_offset(2), 72);
        assert_eq!(l.total_len(), 78);
    }
}
