//! Per-operator timing from execution traces.
//!
//! The paper's Table II reports the average execution time of each DAG edge
//! class measured from event traces; the same numbers calibrate the
//! discrete-event simulator's cost model.

use dashmm_amt::TraceSet;
use dashmm_dag::EdgeOp;

/// Average execution time (µs) per operator class from a trace; classes
/// with no events report 0.  Returned array is indexed by
/// [`EdgeOp::index`].
pub fn per_op_avg_us(trace: &TraceSet) -> [f64; EdgeOp::COUNT] {
    let mut sum = [0.0f64; EdgeOp::COUNT];
    let mut count = [0u64; EdgeOp::COUNT];
    for e in trace.all_events() {
        let c = e.class as usize;
        if c < EdgeOp::COUNT {
            sum[c] += (e.end_ns - e.start_ns) as f64 / 1000.0;
            count[c] += 1;
        }
    }
    let mut out = [0.0; EdgeOp::COUNT];
    for i in 0..EdgeOp::COUNT {
        if count[i] > 0 {
            out[i] = sum[i] / count[i] as f64;
        }
    }
    out
}

/// Event counts per operator class.
pub fn per_op_counts(trace: &TraceSet) -> [u64; EdgeOp::COUNT] {
    let mut count = [0u64; EdgeOp::COUNT];
    for e in trace.all_events() {
        let c = e.class as usize;
        if c < EdgeOp::COUNT {
            count[c] += 1;
        }
    }
    count
}

/// Pretty name helper for harness output.
pub fn op_name(i: usize) -> &'static str {
    EdgeOp::ALL[i].name()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dashmm_amt::TraceEvent;

    #[test]
    fn averages_per_class() {
        let mut t = TraceSet::new(1);
        t.push_worker(vec![
            TraceEvent::span(0, 0, 2000),
            TraceEvent::span(0, 0, 4000),
            TraceEvent::span(3, 0, 1000),
        ]);
        let avg = per_op_avg_us(&t);
        assert!((avg[0] - 3.0).abs() < 1e-12);
        assert!((avg[3] - 1.0).abs() < 1e-12);
        assert_eq!(avg[5], 0.0);
        let counts = per_op_counts(&t);
        assert_eq!(counts[0], 2);
        assert_eq!(counts[3], 1);
    }

    #[test]
    fn names_match_ops() {
        assert_eq!(op_name(EdgeOp::S2M.index()), "S→M");
        assert_eq!(op_name(EdgeOp::I2I.index()), "I→I");
    }
}
