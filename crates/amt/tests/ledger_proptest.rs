//! Property tests of the durable progress ledger
//! (`dashmm_amt::ProgressLedger`): under arbitrary interleavings of
//! fire / ack / gossip / crash-during-gossip, an observer's merged view of
//! a peer never cements work the peer did not publish, never loses work it
//! did, and every watermark is monotone — the invariants replay-driven
//! recovery stands on.

use std::collections::BTreeSet;

use dashmm_amt::{LedgerSnapshot, ProgressLedger};
use proptest::prelude::*;

const NODES: usize = 150;
const RANKS: u32 = 3;

/// One step of the adversarial schedule driving the publisher (rank 1)
/// and the observer (rank 0).
#[derive(Clone, Debug)]
enum Op {
    /// Publisher fires node `id`'s continuation.
    Fire(u32),
    /// Publisher's ARQ lane toward `peer` acks cumulatively up to `cum`.
    Ack(u32, u64),
    /// A snapshot is taken, wire-encoded, and gossiped whole.
    Gossip,
    /// The publisher crashes `keep` bytes into writing the gossip frame:
    /// the observer receives a prefix (or, with over-length `keep`, the
    /// frame plus trailing garbage) and must reject it wholesale.
    CrashGossip(usize),
    /// A previously sent snapshot is delivered again, late and out of
    /// order (duplicated + reordered gossip).
    Redeliver(usize),
}

/// Weighted op choice (the shim has no `prop_oneof`): selector 0–3 fires,
/// 4–5 acks, 6–7 gossips whole, 8 crashes mid-gossip, 9 redelivers.
fn op_strategy() -> impl Strategy<Value = Op> {
    (
        0u8..10,
        0..NODES as u32,
        0u32..RANKS,
        0u64..1000,
        0usize..200,
    )
        .prop_map(|(sel, id, peer, cum, misc)| match sel {
            0..=3 => Op::Fire(id),
            4 | 5 => Op::Ack(peer, cum),
            6 | 7 => Op::Gossip,
            8 => Op::CrashGossip(misc),
            _ => Op::Redeliver(misc),
        })
}

/// What the publisher has truly done so far — the ground truth every
/// observer view is checked against.
#[derive(Default)]
struct Truth {
    fired: BTreeSet<u32>,
    acked: [u64; RANKS as usize],
}

/// Assert `view` ⊆ publisher truth (no phantom cementing) and
/// `floor` ⊆ `view` (nothing cemented is ever lost).
fn check_view(view: &LedgerSnapshot, truth: &Truth, floor: &Truth) {
    assert_eq!(view.fired_count(), {
        let pop: u64 = view.fired.iter().map(|w| w.count_ones() as u64).sum();
        pop
    });
    for id in 0..NODES as u32 {
        if view.is_fired(id) {
            assert!(
                truth.fired.contains(&id),
                "observer cemented node {id} the publisher never fired"
            );
        }
        if floor.fired.contains(&id) {
            assert!(view.is_fired(id), "observer lost cemented node {id}");
        }
    }
    for r in 0..RANKS as usize {
        assert!(
            view.acked[r] <= truth.acked[r],
            "acked[{r}] ran ahead of the publisher"
        );
        assert!(
            view.acked[r] >= floor.acked[r],
            "acked[{r}] watermark regressed"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The recovery-safety property.  A publisher mutates its ledger and
    /// gossips snapshots over a wire that can truncate mid-frame (crash
    /// during gossip), duplicate, and reorder.  After every merge the
    /// observer's view of the publisher must (a) contain only state the
    /// publisher actually published — un-acked / un-fired work is never
    /// cemented, (b) retain everything any earlier merge established —
    /// cemented work is never lost, and (c) keep every acked watermark
    /// monotone.  Truncated frames must decode to `None` and mutate
    /// nothing.
    #[test]
    fn gossip_interleavings_never_cement_unacked_or_lose_cemented(
        ops in prop::collection::vec(op_strategy(), 1..120),
    ) {
        let publisher = ProgressLedger::new(1, NODES, RANKS);
        let observer = ProgressLedger::new(0, NODES, RANKS);
        let mut truth = Truth::default();
        // Monotone floor: the strongest view any successful merge has
        // established so far.  Later merges may only grow it.
        let mut floor = Truth::default();
        // Frames already sent, available for late redelivery.
        let mut sent: Vec<Vec<u8>> = Vec::new();

        for op in ops {
            match op {
                Op::Fire(id) => {
                    publisher.note_fired(id);
                    truth.fired.insert(id);
                    assert_eq!(publisher.fired_count(), truth.fired.len() as u64);
                }
                Op::Ack(peer, cum) => {
                    publisher.note_acked(peer, cum);
                    let t = &mut truth.acked[peer as usize];
                    *t = (*t).max(cum);
                }
                Op::Gossip => {
                    let snap = publisher.snapshot();
                    let mut buf = Vec::new();
                    snap.encode(&mut buf);
                    let decoded = LedgerSnapshot::decode(&buf)
                        .expect("whole frame decodes");
                    prop_assert_eq!(&decoded, &snap);
                    sent.push(buf);
                    prop_assert!(observer.merge_peer(&decoded));
                    for id in 0..NODES as u32 {
                        if decoded.is_fired(id) {
                            floor.fired.insert(id);
                        }
                    }
                    for r in 0..RANKS as usize {
                        floor.acked[r] = floor.acked[r].max(decoded.acked[r]);
                    }
                }
                Op::CrashGossip(keep) => {
                    let mut buf = Vec::new();
                    publisher.snapshot().encode(&mut buf);
                    let before = observer.peer(1);
                    if keep < buf.len() {
                        buf.truncate(keep);
                    } else {
                        buf.push(0xAA); // crashed into the next frame
                    }
                    // A partial frame must reject whole, and since it never
                    // decodes there is nothing to merge: observer unchanged.
                    prop_assert!(LedgerSnapshot::decode(&buf).is_none());
                    prop_assert_eq!(observer.peer(1), before);
                }
                Op::Redeliver(pick) => {
                    if sent.is_empty() {
                        continue;
                    }
                    let buf = &sent[pick % sent.len()];
                    let decoded = LedgerSnapshot::decode(buf)
                        .expect("stored frame still decodes");
                    prop_assert!(observer.merge_peer(&decoded));
                }
            }
            if let Some(view) = observer.peer(1) {
                check_view(&view, &truth, &floor);
                assert_eq!(observer.cemented(1), view.fired_count());
            } else {
                // Nothing merged yet ⇒ nothing may be cemented.
                assert!(floor.fired.is_empty());
                assert_eq!(observer.cemented(1), 0);
            }
        }

        // Quiesce: one final clean gossip must bring the observer's view
        // to exactly the publisher's truth — recovery reading this view
        // replays everything un-cemented and only that.
        let snap = publisher.snapshot();
        prop_assert!(observer.merge_peer(&snap));
        let view = observer.peer(1).expect("final view exists");
        for id in 0..NODES as u32 {
            prop_assert_eq!(view.is_fired(id), truth.fired.contains(&id));
        }
        for r in 0..RANKS as usize {
            prop_assert_eq!(view.acked[r], truth.acked[r]);
        }
    }
}
