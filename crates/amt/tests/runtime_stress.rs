//! Stress and behavioural tests of the AMT runtime beyond the unit level:
//! stealing, priorities, wide fan-in/fan-out, cross-locality continuation
//! chains.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dashmm_amt::{
    encode_f64s, GlobalAddress, LcoSpec, ObsLevel, Parcel, Priority, Runtime, RuntimeConfig,
};

fn rt(localities: usize, workers: usize, priority: bool) -> Arc<Runtime> {
    Runtime::new(RuntimeConfig {
        localities,
        workers_per_locality: workers,
        priority_scheduling: priority,
        obs: ObsLevel::Off,
    })
}

#[test]
fn work_is_stolen_across_workers() {
    // All tasks are seeded to one injector; with several workers and a
    // barrier-ish workload every worker should end up executing some.
    let r = rt(1, 4, false);
    let per_worker: Arc<Vec<AtomicU64>> = Arc::new((0..4).map(|_| AtomicU64::new(0)).collect());
    for _ in 0..64 {
        let pw = Arc::clone(&per_worker);
        r.seed(0, move |ctx| {
            pw[ctx.worker].fetch_add(1, Ordering::Relaxed);
            // Block so other workers (even on a single hardware core, via
            // OS timeslicing) get a chance to pull work.
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
    }
    r.run();
    let counts: Vec<u64> = per_worker
        .iter()
        .map(|c| c.load(Ordering::Relaxed))
        .collect();
    assert_eq!(counts.iter().sum::<u64>(), 64);
    let active = counts.iter().filter(|&&c| c > 0).count();
    assert!(
        active >= 2,
        "expected work to involve ≥ 2 workers: {counts:?}"
    );
}

#[test]
fn single_worker_priority_order() {
    // One worker: seed low tasks first, then a high task; with priority
    // scheduling the high task must run before the queued low tasks.
    let r = rt(1, 1, true);
    let order: Arc<std::sync::Mutex<Vec<u32>>> = Arc::new(std::sync::Mutex::new(Vec::new()));
    // A blocker task enqueues everything else while the worker is busy.
    let o = Arc::clone(&order);
    r.seed(0, move |ctx| {
        for i in 0..5u32 {
            let o2 = Arc::clone(&o);
            ctx.spawn_with_priority(move |_| o2.lock().unwrap().push(i), Priority::Normal);
        }
        let o3 = Arc::clone(&o);
        ctx.spawn_with_priority(move |_| o3.lock().unwrap().push(100), Priority::High);
    });
    r.run();
    let seq = order.lock().unwrap().clone();
    assert_eq!(seq.len(), 6);
    let high_pos = seq.iter().position(|&x| x == 100).unwrap();
    assert_eq!(high_pos, 0, "high-priority task must run first: {seq:?}");
}

#[test]
fn wide_fan_in_reduction() {
    // 2000 inputs into one LCO from 4 localities.
    let r = rt(4, 2, false);
    let sum = r.lco_new(0, LcoSpec::reduce_sum(1, 2000));
    for i in 0..2000u32 {
        let loc = i % 4;
        r.seed(loc, move |ctx| ctx.lco_set(sum, &[i as f64]));
    }
    let rep = r.run();
    let want = (0..2000u64).sum::<u64>() as f64;
    assert_eq!(r.lco_get(sum), Some(vec![want]));
    assert!(
        rep.messages >= 1000,
        "three quarters of the sets are remote"
    );
}

#[test]
fn fan_out_tree_across_localities() {
    // A binary fan-out tree of depth 10 rooted on locality 0, with leaves
    // reporting to a reduction — exercises recursive spawning and routing.
    let localities = 3;
    let r = rt(localities, 2, false);
    let leaves: usize = 1 << 10;
    let sum = r.lco_new(0, LcoSpec::reduce_sum(1, leaves as u32));
    let spawn_action = {
        let r2: Arc<std::sync::Mutex<Option<dashmm_amt::ActionId>>> =
            Arc::new(std::sync::Mutex::new(None));
        let r2c = Arc::clone(&r2);
        let action = r.register_action(Arc::new(move |ctx, _target, payload: &[u8]| {
            let depth = payload[0];
            let action = r2c.lock().unwrap().expect("registered");
            if depth == 0 {
                ctx.lco_set(sum, &[1.0]);
            } else {
                for k in 0..2u32 {
                    let loc = (ctx.locality + 1 + k) % 3;
                    ctx.send(Parcel::new(
                        action,
                        GlobalAddress::new(loc, 0),
                        vec![depth - 1],
                    ));
                }
            }
        }));
        *r2.lock().unwrap() = Some(action);
        action
    };
    r.seed_parcel(Parcel::new(
        spawn_action,
        GlobalAddress::new(0, 0),
        vec![10],
    ));
    let rep = r.run();
    assert_eq!(r.lco_get(sum), Some(vec![leaves as f64]));
    assert!(rep.tasks as usize >= 2 * leaves - 1);
}

#[test]
fn continuation_chain_across_localities() {
    // future(loc 0) → future(loc 1) → future(loc 2) → ... wrap-around,
    // driven purely by continuations carrying data.
    let localities = 4;
    let r = rt(localities, 1, false);
    let hops = 16;
    let mut futs = Vec::new();
    for i in 0..=hops {
        futs.push(r.lco_new((i % localities) as u32, LcoSpec::future(1)));
    }
    for i in 0..hops {
        let src = futs[i];
        let dst = futs[i + 1];
        r.seed(src.locality, move |ctx| {
            ctx.register_continuation(
                src,
                Parcel::new(dashmm_amt::runtime::ACTION_LCO_SET, dst, vec![]),
                true,
            );
        });
    }
    let first = futs[0];
    r.seed(first.locality, move |ctx| ctx.lco_set(first, &[42.0]));
    let rep = r.run();
    assert_eq!(r.lco_get(futs[hops]), Some(vec![42.0]));
    assert!(
        rep.messages >= hops as u64 - 2,
        "most hops cross localities"
    );
}

#[test]
fn quiescence_with_delayed_cascade() {
    // Tasks that sleep before spawning more work: quiescence detection
    // must not fire early.
    let r = rt(2, 2, false);
    let count = Arc::new(AtomicU64::new(0));
    let c0 = Arc::clone(&count);
    r.seed(0, move |ctx| {
        std::thread::sleep(std::time::Duration::from_millis(5));
        for _ in 0..8 {
            let c = Arc::clone(&c0);
            ctx.spawn(move |ctx2| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                let c2 = Arc::clone(&c);
                ctx2.spawn(move |_| {
                    c2.fetch_add(1, Ordering::Relaxed);
                });
            });
        }
    });
    r.run();
    assert_eq!(count.load(Ordering::SeqCst), 8);
}

#[test]
fn parcel_payload_roundtrip_through_network() {
    // Send structured f64 payloads across localities and verify framing.
    let r = rt(2, 1, false);
    let out = r.lco_new(1, LcoSpec::reduce_sum(3, 2));
    let action = r.register_action(Arc::new(move |ctx, _t, payload: &[u8]| {
        let vals = dashmm_amt::decode_f64s(payload);
        ctx.lco_set(out, &vals);
    }));
    r.seed(0, move |ctx| {
        for k in 0..2 {
            let mut payload = Vec::new();
            encode_f64s(&[k as f64, 10.0 * k as f64, -1.0], &mut payload);
            ctx.send(Parcel::new(action, GlobalAddress::new(1, 0), payload));
        }
    });
    r.run();
    assert_eq!(r.lco_get(out), Some(vec![1.0, 10.0, -2.0]));
}
