//! Durable progress ledger and peer-failure descriptors.
//!
//! Recovery from a lost locality (FAULTS.md §Recovery) needs every
//! survivor to know, without asking anyone, how far each peer had
//! progressed before it died.  The [`ProgressLedger`] is that record: a
//! cementation-style watermark per locality — which DAG nodes have fired
//! their continuation, and how many outbound parcels toward each peer have
//! been cumulatively acknowledged by the ARQ layer.  Ranks gossip compact
//! [`LedgerSnapshot`]s on the existing heartbeat path, so at conviction
//! time every survivor holds a recent view of the dead rank's progress.
//!
//! The invariants the ledger guarantees (property-tested in
//! `tests/ledger_proptest.rs`, after the rsnano confirmation-height
//! discipline):
//!
//! * **Monotonicity** — fired bits never clear and acked watermarks never
//!   move backwards, locally or through [`ProgressLedger::merge_peer`].
//!   Out-of-order or duplicated gossip cannot regress a peer view.
//! * **No phantom cementing** — a peer view only ever contains state the
//!   peer itself published.  A snapshot truncated mid-wire (crash during
//!   gossip) fails to decode and mutates nothing.
//! * **Conservation** — `fired_count` always equals the popcount of the
//!   fired bitmap, both locally and in every decoded snapshot.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Why a peer was convicted dead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConvictionReason {
    /// No heartbeat (or any other frame) within the suspicion window.
    HeartbeatTimeout,
    /// The peer's stream hung up or corrupted mid-run without a Bye.
    DirtyClose,
}

impl ConvictionReason {
    /// Stable lower-case name for JSON summaries.
    pub fn name(&self) -> &'static str {
        match self {
            ConvictionReason::HeartbeatTimeout => "heartbeat_timeout",
            ConvictionReason::DirtyClose => "dirty_close",
        }
    }
}

impl fmt::Display for ConvictionReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A convicted peer: who, in which termination epoch, and why.
///
/// Carried by `RunReport::lost_peer` instead of a bare rank id so partial
/// summaries and the metrics digest can name the failure precisely.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeerFailure {
    /// The dead locality.
    pub rank: u32,
    /// Safra termination epoch at conviction time (0 when the transport
    /// does not track epochs).
    pub epoch: u32,
    /// What convicted it.
    pub reason: ConvictionReason,
}

impl fmt::Display for PeerFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rank {} ({}, epoch {})",
            self.rank, self.reason, self.epoch
        )
    }
}

/// One rank's published progress: an immutable, wire-encodable snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LedgerSnapshot {
    /// The publishing rank.
    pub rank: u32,
    /// Publisher's mutation counter at snapshot time; newer snapshots from
    /// the same rank carry strictly larger generations.
    pub generation: u64,
    /// Cumulative acked-parcel watermark toward each peer rank (index =
    /// destination rank; the publisher's own slot stays 0).
    pub acked: Vec<u64>,
    /// Fired-node bitmap, one bit per DAG node id, LSB-first within each
    /// 64-bit word.
    pub fired: Vec<u64>,
    /// Number of DAG nodes the bitmap covers (trailing bits of the last
    /// word are zero).
    pub num_nodes: u32,
}

impl LedgerSnapshot {
    /// Fired nodes in this snapshot (always the bitmap popcount).
    pub fn fired_count(&self) -> u64 {
        self.fired.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Whether node `id` had fired at snapshot time.
    pub fn is_fired(&self, id: u32) -> bool {
        let w = (id / 64) as usize;
        w < self.fired.len() && (self.fired[w] >> (id % 64)) & 1 == 1
    }

    /// Append the wire encoding (length-prefixed, fixed-width LE fields).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.rank.to_le_bytes());
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.num_nodes.to_le_bytes());
        out.extend_from_slice(&(self.acked.len() as u32).to_le_bytes());
        for a in &self.acked {
            out.extend_from_slice(&a.to_le_bytes());
        }
        for w in &self.fired {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// Decode one snapshot.  Returns `None` on any truncation or
    /// inconsistency — a crash mid-gossip yields a prefix, and a prefix
    /// must not partially apply.
    pub fn decode(bytes: &[u8]) -> Option<LedgerSnapshot> {
        // Caps mirror the wire layer's hostile-length discipline: a
        // corrupt header must not trigger a giant allocation.
        const MAX_RANKS: u32 = 1 << 16;
        const MAX_NODES: u32 = 1 << 28;
        let u32_at = |off: usize| -> Option<u32> {
            bytes
                .get(off..off + 4)
                .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
        };
        let u64_at = |off: usize| -> Option<u64> {
            bytes
                .get(off..off + 8)
                .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        };
        let rank = u32_at(0)?;
        let generation = u64_at(4)?;
        let num_nodes = u32_at(12)?;
        let n_ranks = u32_at(16)?;
        if n_ranks > MAX_RANKS || num_nodes > MAX_NODES || rank >= n_ranks {
            return None;
        }
        let words = (num_nodes as usize).div_ceil(64);
        let need = 20 + 8 * (n_ranks as usize + words);
        if bytes.len() != need {
            return None;
        }
        let mut acked = Vec::with_capacity(n_ranks as usize);
        let mut off = 20;
        for _ in 0..n_ranks {
            acked.push(u64_at(off)?);
            off += 8;
        }
        let mut fired = Vec::with_capacity(words);
        for _ in 0..words {
            fired.push(u64_at(off)?);
            off += 8;
        }
        // Trailing bits past num_nodes must be clear; set ones mean the
        // header and bitmap disagree (bit-level corruption the CRC let
        // through, or a malformed sender).
        if num_nodes % 64 != 0 {
            if let Some(last) = fired.last() {
                if last >> (num_nodes % 64) != 0 {
                    return None;
                }
            }
        }
        Some(LedgerSnapshot {
            rank,
            generation,
            acked,
            fired,
            num_nodes,
        })
    }
}

/// The local half of the ledger: this rank's own fired/acked record plus
/// the latest gossiped snapshot of every peer.
///
/// All mutators are lock-cheap and callable from the executor hot path
/// (`note_fired`) and the transport's progress thread (`note_acked`,
/// `merge_peer`) concurrently.
pub struct ProgressLedger {
    rank: u32,
    num_nodes: u32,
    generation: AtomicU64,
    fired: Mutex<Vec<u64>>,
    fired_count: AtomicU64,
    acked: Vec<AtomicU64>,
    peers: Mutex<Vec<Option<LedgerSnapshot>>>,
}

impl ProgressLedger {
    /// Ledger for `rank` over a DAG of `num_nodes` nodes across
    /// `num_ranks` localities.
    pub fn new(rank: u32, num_nodes: usize, num_ranks: u32) -> Self {
        ProgressLedger {
            rank,
            num_nodes: num_nodes as u32,
            generation: AtomicU64::new(0),
            fired: Mutex::new(vec![0u64; num_nodes.div_ceil(64)]),
            fired_count: AtomicU64::new(0),
            acked: (0..num_ranks).map(|_| AtomicU64::new(0)).collect(),
            peers: Mutex::new(vec![None; num_ranks as usize]),
        }
    }

    /// This rank.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Record that DAG node `id` fired its continuation here.  Idempotent.
    pub fn note_fired(&self, id: u32) {
        debug_assert!(id < self.num_nodes);
        let mut fired = self.fired.lock();
        let w = &mut fired[(id / 64) as usize];
        let bit = 1u64 << (id % 64);
        if *w & bit == 0 {
            *w |= bit;
            self.fired_count.fetch_add(1, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Raise the cumulative acked-parcel watermark toward `peer` to at
    /// least `cum` (monotone; stale values are ignored).
    pub fn note_acked(&self, peer: u32, cum: u64) {
        let slot = &self.acked[peer as usize];
        let mut cur = slot.load(Ordering::Relaxed);
        while cum > cur {
            match slot.compare_exchange_weak(cur, cum, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => {
                    self.generation.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Nodes fired locally so far.
    pub fn fired_count(&self) -> u64 {
        self.fired_count.load(Ordering::Relaxed)
    }

    /// Whether node `id` has fired locally.
    pub fn is_fired(&self, id: u32) -> bool {
        let fired = self.fired.lock();
        (fired[(id / 64) as usize] >> (id % 64)) & 1 == 1
    }

    /// Publish the current local state as an immutable snapshot.
    pub fn snapshot(&self) -> LedgerSnapshot {
        // Lock order: fired first, then reads of the atomics; generation
        // is sampled before the bitmap so a concurrent mutation can only
        // make the snapshot look *older* than it is, never newer.
        let generation = self.generation.load(Ordering::Relaxed);
        let fired = self.fired.lock().clone();
        LedgerSnapshot {
            rank: self.rank,
            generation,
            acked: self
                .acked
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            fired,
            num_nodes: self.num_nodes,
        }
    }

    /// Fold a gossiped peer snapshot into the peer table.  Merging is
    /// monotone per field — fired bits OR, watermarks max, generation max —
    /// so duplicated or reordered gossip can never regress a view.  A
    /// snapshot for this rank itself, or with a mismatched node count, is
    /// rejected.  Returns whether anything was stored.
    pub fn merge_peer(&self, snap: &LedgerSnapshot) -> bool {
        if snap.rank == self.rank
            || snap.num_nodes != self.num_nodes
            || snap.acked.len() != self.acked.len()
        {
            return false;
        }
        let mut peers = self.peers.lock();
        let slot = &mut peers[snap.rank as usize];
        match slot {
            None => *slot = Some(snap.clone()),
            Some(cur) => {
                cur.generation = cur.generation.max(snap.generation);
                for (c, s) in cur.acked.iter_mut().zip(&snap.acked) {
                    *c = (*c).max(*s);
                }
                for (c, s) in cur.fired.iter_mut().zip(&snap.fired) {
                    *c |= *s;
                }
            }
        }
        true
    }

    /// Latest merged view of `peer`'s progress, if any gossip arrived.
    pub fn peer(&self, peer: u32) -> Option<LedgerSnapshot> {
        self.peers.lock().get(peer as usize).and_then(|s| s.clone())
    }

    /// Nodes known (via gossip) to have fired at `peer` — the work of the
    /// dead rank that is provably cemented and will not be recomputed
    /// blindly by accounting alone.
    pub fn cemented(&self, peer: u32) -> u64 {
        self.peer(peer).map(|s| s.fired_count()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fired_bits_are_idempotent_and_counted() {
        let l = ProgressLedger::new(0, 130, 2);
        l.note_fired(0);
        l.note_fired(64);
        l.note_fired(129);
        l.note_fired(64);
        assert_eq!(l.fired_count(), 3);
        assert!(l.is_fired(64) && !l.is_fired(1));
        let s = l.snapshot();
        assert_eq!(s.fired_count(), 3);
        assert!(s.is_fired(129) && !s.is_fired(128));
    }

    #[test]
    fn acked_watermark_is_monotone() {
        let l = ProgressLedger::new(0, 8, 3);
        l.note_acked(1, 10);
        l.note_acked(1, 7); // stale: ignored
        l.note_acked(2, 3);
        let s = l.snapshot();
        assert_eq!(s.acked, vec![0, 10, 3]);
    }

    #[test]
    fn snapshot_roundtrips_through_wire_encoding() {
        let l = ProgressLedger::new(1, 100, 3);
        l.note_fired(5);
        l.note_fired(99);
        l.note_acked(0, 42);
        let s = l.snapshot();
        let mut buf = Vec::new();
        s.encode(&mut buf);
        assert_eq!(LedgerSnapshot::decode(&buf), Some(s));
    }

    #[test]
    fn truncated_snapshot_rejected_whole() {
        let l = ProgressLedger::new(1, 100, 3);
        l.note_fired(5);
        let mut buf = Vec::new();
        l.snapshot().encode(&mut buf);
        for cut in 0..buf.len() {
            assert_eq!(LedgerSnapshot::decode(&buf[..cut]), None, "cut at {cut}");
        }
        buf.push(0);
        assert_eq!(LedgerSnapshot::decode(&buf), None, "trailing garbage");
    }

    #[test]
    fn merge_is_monotone_under_reordered_gossip() {
        let sender = ProgressLedger::new(1, 70, 2);
        let old = sender.snapshot();
        sender.note_fired(3);
        sender.note_acked(0, 9);
        let new = sender.snapshot();
        let l = ProgressLedger::new(0, 70, 2);
        assert!(l.merge_peer(&new));
        assert!(l.merge_peer(&old)); // arrives late: stored but cannot regress
        let view = l.peer(1).unwrap();
        assert!(view.is_fired(3));
        assert_eq!(view.acked[0], 9);
        assert_eq!(l.cemented(1), 1);
    }

    #[test]
    fn own_and_mismatched_snapshots_rejected() {
        let l = ProgressLedger::new(0, 70, 2);
        assert!(!l.merge_peer(&l.snapshot()));
        let other = ProgressLedger::new(1, 71, 2).snapshot();
        assert!(!l.merge_peer(&other));
    }

    #[test]
    fn peer_failure_formats_for_summaries() {
        let f = PeerFailure {
            rank: 2,
            epoch: 5,
            reason: ConvictionReason::DirtyClose,
        };
        assert_eq!(f.to_string(), "rank 2 (dirty_close, epoch 5)");
        assert_eq!(
            ConvictionReason::HeartbeatTimeout.name(),
            "heartbeat_timeout"
        );
    }
}
