//! Global addresses.

/// A global address: which locality owns the object and its slot there.
///
/// Mirrors HPX-5's global address space at the granularity this workspace
/// needs: LCOs and memory blocks are registered into per-locality slabs and
/// addressed uniformly from anywhere; the runtime routes operations on
/// non-local addresses through parcels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalAddress {
    /// Owning locality.
    pub locality: u32,
    /// Slot within the owning locality's object table.
    pub index: u32,
}

impl GlobalAddress {
    /// Construct an address.
    pub const fn new(locality: u32, index: u32) -> Self {
        GlobalAddress { locality, index }
    }

    /// Pack into a `u64` (for embedding in parcel payloads).
    pub fn pack(&self) -> u64 {
        ((self.locality as u64) << 32) | self.index as u64
    }

    /// Unpack from a `u64`.
    pub fn unpack(v: u64) -> Self {
        GlobalAddress {
            locality: (v >> 32) as u32,
            index: v as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        for a in [
            GlobalAddress::new(0, 0),
            GlobalAddress::new(3, 17),
            GlobalAddress::new(u32::MAX, u32::MAX),
        ] {
            assert_eq!(GlobalAddress::unpack(a.pack()), a);
        }
    }

    #[test]
    fn ordering_by_locality_then_index() {
        assert!(GlobalAddress::new(0, 5) < GlobalAddress::new(1, 0));
        assert!(GlobalAddress::new(1, 0) < GlobalAddress::new(1, 1));
    }
}
