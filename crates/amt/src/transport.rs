//! Pluggable inter-locality transport.
//!
//! The runtime routes every parcel whose target locality is not hosted by
//! this process through a [`Transport`].  Two implementations exist:
//!
//! * [`SharedMem`] (here) — every locality lives in this process as a
//!   thread group; "remote" sends never reach the transport.  This is the
//!   historical single-process behaviour and the default.
//! * `SocketTransport` (crate `dashmm-net`) — each locality is an OS
//!   process; parcels cross real sockets in a versioned wire format with
//!   per-destination coalescing, the configuration the paper actually
//!   benchmarks (§III, §VI).
//!
//! The trait is deliberately narrow: the runtime only needs to know which
//! localities are local, how to hand a parcel to the wire, and when the
//! *distributed* computation has quiesced.  Everything else (framing,
//! coalescing, progress threads, rendezvous) stays behind the trait.

use std::sync::Arc;

use crate::ledger::{ConvictionReason, PeerFailure, ProgressLedger};
use crate::parcel::Parcel;
use crate::trace::TraceEvent;

/// Coalescing parameters shared verbatim by the real transport
/// (`dashmm-net`'s per-destination coalescer) and the simulator's
/// `NetworkModel` — one struct so measured runs and simulated predictions
/// are parameterised identically (the paper's coalescing ablation, §IV).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoalesceConfig {
    /// Coalesce remote parcels per destination locality; `false` sends one
    /// frame per parcel (the ablation configuration).
    pub enabled: bool,
    /// Flush a destination buffer once its encoded parcels reach this many
    /// bytes.
    pub max_bytes: usize,
    /// Flush a destination buffer once its oldest parcel has waited this
    /// long, even if under `max_bytes`.
    pub max_delay_us: u64,
    /// Backpressure bound: a sender blocks once this many bytes are queued
    /// toward peers and not yet written, so a slow peer cannot OOM it.
    pub max_queue_bytes: usize,
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        CoalesceConfig {
            enabled: true,
            max_bytes: 16 * 1024,
            max_delay_us: 200,
            max_queue_bytes: 4 << 20,
        }
    }
}

impl CoalesceConfig {
    /// The ablation configuration: one frame per parcel.
    pub fn disabled() -> Self {
        CoalesceConfig {
            enabled: false,
            ..CoalesceConfig::default()
        }
    }
}

/// Cumulative transport-level counters (monotone over the transport's
/// lifetime; callers difference two snapshots to scope a run).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Parcels handed to the wire.
    pub parcels_sent: u64,
    /// Payload-carrying bytes sent (frame headers included).
    pub bytes_sent: u64,
    /// Frames sent (coalescing makes this ≤ `parcels_sent`).
    pub frames_sent: u64,
    /// Parcels delivered into the local scheduler from the wire.
    pub parcels_received: u64,
    /// Bytes received in parcel-carrying frames.
    pub bytes_received: u64,
}

/// Callbacks the runtime installs into a transport at construction.
///
/// The transport's progress machinery must not hold a strong reference to
/// the runtime (the runtime owns the transport), so these closures
/// typically capture a `Weak`.
pub struct TransportHooks {
    /// Deliver one inbound parcel into the local scheduler.  Bumps the
    /// runtime's pending-task counter, so quiescence accounting holds.
    pub deliver: Box<dyn Fn(Parcel) + Send + Sync>,
    /// Exact local-idle probe: `true` iff no local task is queued or
    /// executing *at the instant of the call*.  Used by distributed
    /// termination detection; staleness here would terminate runs early.
    pub locally_idle: Box<dyn Fn() -> bool + Send + Sync>,
    /// Nanoseconds since the runtime epoch — the timebase trace events
    /// share with worker-side spans.
    pub now_ns: Box<dyn Fn() -> u64 + Send + Sync>,
}

/// Inter-locality parcel transport.
pub trait Transport: Send + Sync {
    /// Total localities across all participating processes.
    fn num_ranks(&self) -> u32;

    /// The locality this process hosts (transports hosting every locality
    /// report 0).
    fn rank(&self) -> u32;

    /// Whether `locality` is hosted by this process.
    fn is_local(&self, locality: u32) -> bool;

    /// Install the runtime callbacks.  Called exactly once, before any
    /// send or poll.
    fn attach(&self, hooks: TransportHooks);

    /// Mark the start of one `Runtime::run` (a new run epoch).  Parcels
    /// that arrived early for this epoch are delivered here.
    fn begin_run(&self);

    /// Queue one parcel toward a remote locality.  May block on
    /// backpressure ([`CoalesceConfig::max_queue_bytes`]).
    fn send(&self, parcel: Parcel);

    /// Poll for global quiescence.  `locally_idle` is the caller's
    /// pending-count probe at the time of the call; a distributed
    /// transport combines it with peer state, the shared-memory transport
    /// returns it unchanged.  `true` ends the run.
    fn poll_quiescence(&self, locally_idle: bool) -> bool;

    /// Counter snapshot.
    fn stats(&self) -> TransportStats;

    /// Drain transport-side trace events (communication spans on the
    /// runtime timebase).  Default: none.
    fn drain_trace(&self) -> Vec<TraceEvent> {
        Vec::new()
    }

    /// The first peer locality declared dead (heartbeat suspicion expired
    /// or mid-run hangup), if any.  The runtime polls this alongside
    /// quiescence so a dead peer aborts the run cleanly instead of hanging
    /// it.  Default: peers never fail (in-process transports).
    fn failed_peer(&self) -> Option<u32> {
        None
    }

    /// Full conviction record for [`Transport::failed_peer`]: rank plus
    /// the termination epoch and reason.  Default: wraps `failed_peer`
    /// with a heartbeat-timeout reason at epoch 0, for transports that do
    /// not track either.
    fn failed_peer_info(&self) -> Option<PeerFailure> {
        self.failed_peer().map(|rank| PeerFailure {
            rank,
            epoch: 0,
            reason: ConvictionReason::HeartbeatTimeout,
        })
    }

    /// Fence a convicted peer so the survivors can run recovery: stop
    /// expecting it in termination detection and collectives, discard its
    /// staged traffic, and let `poll_quiescence` converge over the
    /// survivor set.  Returns `true` iff the transport fenced the peer —
    /// the runtime then keeps running toward survivor quiescence instead
    /// of aborting.  Default: unsupported (`false`, today's clean abort).
    fn fence_peer(&self, _dead: u32) -> bool {
        false
    }

    /// Install the progress ledger the transport should update with ARQ
    /// ack watermarks and gossip to peers on the heartbeat path.  Called
    /// by the executor once per evaluation; transports without a wire
    /// (or without gossip support) may ignore it.
    fn set_ledger(&self, _ledger: Arc<ProgressLedger>) {}
}

/// The in-process transport: all localities are thread groups in this
/// process, so nothing ever reaches the wire.  Preserves the runtime's
/// historical single-process behaviour exactly.
pub struct SharedMem {
    localities: u32,
}

impl SharedMem {
    /// Transport spanning `localities` in-process localities.
    pub fn new(localities: u32) -> Self {
        assert!(localities >= 1);
        SharedMem { localities }
    }
}

impl Transport for SharedMem {
    fn num_ranks(&self) -> u32 {
        self.localities
    }

    fn rank(&self) -> u32 {
        0
    }

    fn is_local(&self, locality: u32) -> bool {
        debug_assert!(locality < self.localities);
        true
    }

    fn attach(&self, _hooks: TransportHooks) {}

    fn begin_run(&self) {}

    fn send(&self, parcel: Parcel) {
        unreachable!(
            "SharedMem transport asked to send to locality {} — every locality is local",
            parcel.target.locality
        );
    }

    fn poll_quiescence(&self, locally_idle: bool) -> bool {
        locally_idle
    }

    fn stats(&self) -> TransportStats {
        TransportStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_mem_hosts_everything() {
        let t = SharedMem::new(4);
        assert_eq!(t.num_ranks(), 4);
        assert_eq!(t.rank(), 0);
        for loc in 0..4 {
            assert!(t.is_local(loc));
        }
        assert_eq!(t.stats(), TransportStats::default());
        assert!(t.drain_trace().is_empty());
    }

    #[test]
    fn shared_mem_quiescence_mirrors_local_idle() {
        let t = SharedMem::new(2);
        t.begin_run();
        assert!(!t.poll_quiescence(false));
        assert!(t.poll_quiescence(true));
    }

    #[test]
    fn coalesce_config_defaults() {
        let c = CoalesceConfig::default();
        assert!(c.enabled && c.max_bytes > 0 && c.max_queue_bytes > c.max_bytes);
        assert!(!CoalesceConfig::disabled().enabled);
    }
}
