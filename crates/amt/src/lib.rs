//! An asynchronous many-tasking (AMT) runtime modelled on HPX-5.
//!
//! The paper (§III) characterises HPX-5 as: diffusive, message-driven
//! computation made of lightweight threads and **parcels** (active
//! messages), executing within a **global address space**, synchronising
//! through **LCOs** (local control objects) — event-driven, globally
//! addressable objects that co-locate data and control: they reduce inputs,
//! evaluate a trigger predicate, and run registered continuations as new
//! lightweight threads.  *Sending a parcel is the only way of spawning a
//! thread*; in shared memory it simply happens that every target address is
//! local.
//!
//! This crate reproduces that model:
//!
//! * [`GlobalAddress`] — `(locality, index)` pairs addressing LCOs and
//!   memory blocks across [`Runtime`] localities (threads standing in for
//!   the paper's MPI-rank-like localities),
//! * [`Parcel`]s carrying a registered action, a target address and a byte
//!   payload; remote work may *only* travel as parcels (closures are
//!   restricted to the local locality, keeping the code honest about what
//!   could execute distributed),
//! * [`LcoSpec`] / LCO cells — input slots, a reduction, a trigger
//!   predicate (all inputs arrived) and dynamically registered
//!   continuations, exactly the machinery DASHMM builds its implicit DAG
//!   from (paper §IV, Figure 2),
//! * a per-locality scheduler with per-worker deques and randomized work
//!   stealing, plus an optional **binary task priority** — the extension
//!   the paper's conclusions call for,
//! * low-overhead event tracing and the utilization-fraction analysis of
//!   §V-B (Equations 1–2).

pub mod addr;
pub mod batch;
pub mod fault;
pub mod lco;
pub mod ledger;
pub mod parcel;
pub mod runtime;
pub mod trace;
pub mod transport;

pub use addr::GlobalAddress;
pub use batch::{EdgeBatcher, DEFAULT_BATCH_THRESHOLD};
pub use fault::{FaultPlan, FrameFate, KillSpec, StallSpec, ENV_FAULTS};
pub use lco::{LcoOp, LcoSpec};
pub use ledger::{ConvictionReason, LedgerSnapshot, PeerFailure, ProgressLedger};
pub use parcel::{decode_f64s, encode_f64s, ActionId, Parcel, Priority};
pub use runtime::{RunReport, Runtime, RuntimeConfig, TaskCtx};
pub use trace::{
    class_name, utilization_by_class, utilization_total, ClassCounters, ObsLevel, TraceEvent,
    TraceSet, CLASS_LCO_TRIGGER, CLASS_NET_ACK, CLASS_NET_HEARTBEAT, CLASS_NET_RETRANSMIT,
    CLASS_NET_RX, CLASS_NET_TX, CLASS_NONE, CLASS_PARCEL_FLUSH, CLASS_RECOVERY, NO_TAG,
};
pub use transport::{CoalesceConfig, SharedMem, Transport, TransportHooks, TransportStats};
