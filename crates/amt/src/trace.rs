//! Event tracing and utilization analysis — now owned by [`dashmm_obs`].
//!
//! The runtime records through `dashmm-obs` ring buffers; this module
//! re-exports the trace types so existing `dashmm_amt::trace` /
//! `dashmm_amt::{TraceEvent, TraceSet}` imports keep working.

pub use dashmm_obs::{
    class_name, utilization_by_class, utilization_total, ClassCounters, ClassStat, ObsLevel,
    SpanRing, TraceEvent, TraceSet, CLASS_COUNT, CLASS_LCO_TRIGGER, CLASS_NET_ACK,
    CLASS_NET_HEARTBEAT, CLASS_NET_RETRANSMIT, CLASS_NET_RX, CLASS_NET_TX, CLASS_NONE,
    CLASS_PARCEL_FLUSH, CLASS_RECOVERY, NO_TAG,
};
