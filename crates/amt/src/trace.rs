//! Event tracing and utilization analysis (paper §V-B).
//!
//! DASHMM marks the beginning and end of every operator execution; the
//! traces measure the fraction of available core time spent doing the
//! application's work rather than runtime management.  [`utilization_total`]
//! implements Equation (2) of the paper: the fraction of time spent in
//! traced events out of `n · Δt_k` for `M` uniform intervals of the total
//! evaluation time; [`utilization_by_class`] is Equation (1), resolved per
//! event class (per operator — the data behind Figure 5).

/// One traced span, in nanoseconds relative to the start of the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event class (e.g. an `EdgeOp` index).
    pub class: u8,
    /// Start of the span.
    pub start_ns: u64,
    /// End of the span.
    pub end_ns: u64,
}

/// Trace events grouped by worker.
#[derive(Debug, Default)]
pub struct TraceSet {
    per_worker: Vec<Vec<TraceEvent>>,
    n_workers: usize,
}

impl TraceSet {
    /// Empty set declaring how many workers participated (the denominator
    /// of the utilization fraction counts *all* scheduler threads, busy or
    /// not).
    pub fn new(n_workers: usize) -> Self {
        TraceSet {
            per_worker: Vec::new(),
            n_workers,
        }
    }

    /// Number of scheduler threads.
    pub fn num_workers(&self) -> usize {
        self.n_workers
    }

    /// Append one worker's events.
    pub fn push_worker(&mut self, events: Vec<TraceEvent>) {
        self.per_worker.push(events);
    }

    /// Iterate over all events.
    pub fn all_events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.per_worker.iter().flatten()
    }

    /// Total number of events.
    pub fn len(&self) -> usize {
        self.per_worker.iter().map(|v| v.len()).sum()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Latest event end (the evaluation span used for interval binning).
    pub fn span_ns(&self) -> u64 {
        self.all_events().map(|e| e.end_ns).max().unwrap_or(0)
    }
}

/// Split `[0, total_ns)` into `m` uniform intervals and accumulate the
/// overlap of each event with each interval, divided by `n_workers · Δt`.
fn accumulate(
    events: impl Iterator<Item = TraceEvent>,
    total_ns: u64,
    m: usize,
    n_workers: usize,
    mut sink: impl FnMut(usize, u8, f64),
) {
    assert!(m > 0 && total_ns > 0 && n_workers > 0);
    let dt = total_ns as f64 / m as f64;
    for e in events {
        let (s, t) = (e.start_ns as f64, (e.end_ns.max(e.start_ns)) as f64);
        let first = ((s / dt).floor() as usize).min(m - 1);
        let last = ((t / dt).floor() as usize).min(m - 1);
        for k in first..=last {
            let lo = s.max(k as f64 * dt);
            let hi = t.min((k + 1) as f64 * dt);
            if hi > lo {
                sink(k, e.class, (hi - lo) / (dt * n_workers as f64));
            }
        }
    }
}

/// Total utilization fraction `f_k` per interval (paper Eq. 2).
pub fn utilization_total(trace: &TraceSet, m: usize) -> Vec<f64> {
    let total = trace.span_ns().max(1);
    let mut out = vec![0.0; m];
    accumulate(
        trace.all_events().copied(),
        total,
        m,
        trace.num_workers(),
        |k, _, v| {
            out[k] += v;
        },
    );
    out
}

/// Per-class utilization fractions `f_k^{(i)}` (paper Eq. 1): a row per
/// class index `0..n_classes`, each of length `m`.
pub fn utilization_by_class(trace: &TraceSet, m: usize, n_classes: usize) -> Vec<Vec<f64>> {
    let total = trace.span_ns().max(1);
    let mut out = vec![vec![0.0; m]; n_classes];
    accumulate(
        trace.all_events().copied(),
        total,
        m,
        trace.num_workers(),
        |k, c, v| {
            if (c as usize) < n_classes {
                out[c as usize][k] += v;
            }
        },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(events: Vec<TraceEvent>, workers: usize) -> TraceSet {
        let mut t = TraceSet::new(workers);
        t.push_worker(events);
        t
    }

    #[test]
    fn one_event_full_span_one_worker() {
        let t = ts(
            vec![TraceEvent {
                class: 0,
                start_ns: 0,
                end_ns: 1000,
            }],
            1,
        );
        let u = utilization_total(&t, 4);
        for v in u {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn two_workers_halve_utilization() {
        let t = ts(
            vec![TraceEvent {
                class: 0,
                start_ns: 0,
                end_ns: 1000,
            }],
            2,
        );
        let u = utilization_total(&t, 2);
        for v in u {
            assert!((v - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn partial_interval_overlap() {
        // Event covers [250, 750) of a 1000ns span split into 4 intervals.
        let t = ts(
            vec![TraceEvent {
                class: 1,
                start_ns: 250,
                end_ns: 750,
            }],
            1,
        );
        // Force total span: add a zero-length marker at 1000.
        let mut t = t;
        t.push_worker(vec![TraceEvent {
            class: 0,
            start_ns: 1000,
            end_ns: 1000,
        }]);
        let u = utilization_total(&t, 4);
        assert!((u[0] - 0.0).abs() < 1e-12);
        assert!((u[1] - 1.0).abs() < 1e-12);
        assert!((u[2] - 1.0).abs() < 1e-12);
        assert!((u[3] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn per_class_split() {
        let t = ts(
            vec![
                TraceEvent {
                    class: 0,
                    start_ns: 0,
                    end_ns: 500,
                },
                TraceEvent {
                    class: 1,
                    start_ns: 500,
                    end_ns: 1000,
                },
            ],
            1,
        );
        let by = utilization_by_class(&t, 2, 2);
        assert!((by[0][0] - 1.0).abs() < 1e-12);
        assert!((by[0][1] - 0.0).abs() < 1e-12);
        assert!((by[1][0] - 0.0).abs() < 1e-12);
        assert!((by[1][1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn class_sum_equals_total() {
        let t = ts(
            vec![
                TraceEvent {
                    class: 0,
                    start_ns: 100,
                    end_ns: 400,
                },
                TraceEvent {
                    class: 1,
                    start_ns: 300,
                    end_ns: 900,
                },
                TraceEvent {
                    class: 2,
                    start_ns: 50,
                    end_ns: 1000,
                },
            ],
            3,
        );
        let m = 10;
        let total = utilization_total(&t, m);
        let by = utilization_by_class(&t, m, 3);
        for k in 0..m {
            let s: f64 = by.iter().map(|row| row[k]).sum();
            assert!((s - total[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn utilization_bounded_by_one_per_worker() {
        // Two overlapping events on two workers: fraction ≤ 1.
        let mut t = TraceSet::new(2);
        t.push_worker(vec![TraceEvent {
            class: 0,
            start_ns: 0,
            end_ns: 1000,
        }]);
        t.push_worker(vec![TraceEvent {
            class: 0,
            start_ns: 0,
            end_ns: 1000,
        }]);
        let u = utilization_total(&t, 5);
        for v in u {
            assert!(v <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn empty_trace() {
        let t = TraceSet::new(4);
        assert!(t.is_empty());
        let u = utilization_total(&t, 3);
        assert_eq!(u, vec![0.0, 0.0, 0.0]);
    }
}
