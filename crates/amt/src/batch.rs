//! Keyed edge batching for the LCO continuation path.
//!
//! The evaluation DAG applies the same per-level operator to many edges.
//! An [`EdgeBatcher`] collects those edges at the locality where they will
//! be applied, keyed by the operator they share, and hands back a full
//! batch either when a key reaches its flush threshold or when the last
//! expected edge for that key arrives.
//!
//! Accounting is exact: the expected edge count per key is registered up
//! front (from a sweep of the DAG), every deposit decrements it, and the
//! final deposit always flushes — so no edge can be stranded in a bucket
//! and quiescence detection is unaffected.  Batch *composition* may vary
//! with scheduling order; callers must ensure (as the batched operators
//! do) that per-edge results do not depend on which batch an edge lands
//! in.
//!
//! In a multi-process run, every edge is applied — and therefore
//! deposited — at the locality owning its destination LCO.  The sweep
//! must register expectations **only for edges applied at localities this
//! process hosts**: an edge applied at a remote process drains at *its*
//! batcher, and counting it here would hold the local drain count
//! ([`EdgeBatcher::remaining`]) open forever.

use std::collections::HashMap;
use std::hash::Hash;

use parking_lot::Mutex;

/// Default flush threshold: large enough to amortise the gather/GEMM
/// setup, small enough to bound held memory and latency.
pub const DEFAULT_BATCH_THRESHOLD: usize = 32;

struct Bucket<E> {
    /// Deposits still expected for this key.
    remaining: usize,
    /// Entries collected since the last flush.
    entries: Vec<E>,
}

/// Collects per-operator edge batches with exact drain accounting.
pub struct EdgeBatcher<K, E> {
    buckets: Mutex<HashMap<K, Bucket<E>>>,
    threshold: usize,
}

impl<K: Eq + Hash, E> EdgeBatcher<K, E> {
    /// Batcher flushing each key at `threshold` entries (and always on the
    /// key's last expected deposit).
    pub fn new(threshold: usize) -> Self {
        assert!(threshold > 0, "flush threshold must be positive");
        EdgeBatcher {
            buckets: Mutex::new(HashMap::new()),
            threshold,
        }
    }

    /// Register `count` further expected deposits for `key`.  Called from
    /// the DAG sweep before any deposits; may be called repeatedly per key
    /// (counts accumulate).
    pub fn expect(&self, key: K, count: usize) {
        let mut b = self.buckets.lock();
        let bucket = b.entry(key).or_insert(Bucket {
            remaining: 0,
            entries: Vec::new(),
        });
        bucket.remaining += count;
    }

    /// Deposit one edge.  Returns the accumulated batch (including this
    /// entry) when the key hit the threshold or its last expected deposit,
    /// `None` while the batch is still filling.
    ///
    /// Panics if `key` was never registered via [`EdgeBatcher::expect`] or
    /// has already received all expected deposits — either means the
    /// install-time DAG sweep and the apply path disagree.
    pub fn deposit(&self, key: K, entry: E) -> Option<Vec<E>> {
        let mut b = self.buckets.lock();
        let bucket = b.get_mut(&key).expect("deposit for unregistered batch key");
        assert!(
            bucket.remaining > 0,
            "more deposits than expected for batch key"
        );
        bucket.remaining -= 1;
        bucket.entries.push(entry);
        if bucket.remaining == 0 || bucket.entries.len() >= self.threshold {
            Some(std::mem::take(&mut bucket.entries))
        } else {
            None
        }
    }

    /// Entries currently parked in unfilled batches (diagnostics/tests;
    /// zero once every expected deposit has arrived).
    pub fn parked(&self) -> usize {
        self.buckets.lock().values().map(|b| b.entries.len()).sum()
    }

    /// Deposits still outstanding across all keys — the open drain count.
    /// Zero after a complete run; permanently nonzero if expectations were
    /// registered for edges that drain at another process (see the module
    /// docs).
    pub fn remaining(&self) -> usize {
        self.buckets.lock().values().map(|b| b.remaining).sum()
    }

    /// Tear down every bucket, returning the entries parked in unfilled
    /// batches and *clearing all outstanding expectations*.
    ///
    /// For recovery after a locality loss: deposits that will never
    /// arrive (their source died) would hold buckets open forever, so the
    /// coordinator drains everything, re-registers fresh expectations
    /// from a post-re-ownership sweep, and force-applies the returned
    /// parked batches itself.  Must not race active deposits (called
    /// between runs, at survivor quiescence).
    pub fn drain_parked(&self) -> Vec<(K, Vec<E>)> {
        let mut b = self.buckets.lock();
        std::mem::take(&mut *b)
            .into_iter()
            .filter(|(_, bucket)| !bucket.entries.is_empty())
            .map(|(k, bucket)| (k, bucket.entries))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_deposit_flushes_partial_batch() {
        let b: EdgeBatcher<u32, i32> = EdgeBatcher::new(100);
        b.expect(7, 3);
        assert!(b.deposit(7, 1).is_none());
        assert!(b.deposit(7, 2).is_none());
        assert_eq!(b.deposit(7, 3), Some(vec![1, 2, 3]));
        assert_eq!(b.parked(), 0);
    }

    #[test]
    fn threshold_flushes_and_refills() {
        let b: EdgeBatcher<u32, i32> = EdgeBatcher::new(2);
        b.expect(0, 5);
        assert!(b.deposit(0, 10).is_none());
        assert_eq!(b.deposit(0, 11), Some(vec![10, 11]));
        assert!(b.deposit(0, 12).is_none());
        assert_eq!(b.deposit(0, 13), Some(vec![12, 13]));
        // Final expected deposit flushes a batch of one.
        assert_eq!(b.deposit(0, 14), Some(vec![14]));
        assert_eq!(b.parked(), 0);
    }

    #[test]
    fn expectations_accumulate() {
        let b: EdgeBatcher<&str, i32> = EdgeBatcher::new(10);
        b.expect("k", 1);
        b.expect("k", 1);
        assert!(b.deposit("k", 1).is_none());
        assert_eq!(b.deposit("k", 2), Some(vec![1, 2]));
    }

    #[test]
    fn keys_are_independent() {
        let b: EdgeBatcher<u8, i32> = EdgeBatcher::new(2);
        b.expect(1, 2);
        b.expect(2, 2);
        assert!(b.deposit(1, 100).is_none());
        assert!(b.deposit(2, 200).is_none());
        assert_eq!(b.parked(), 2);
        assert_eq!(b.deposit(1, 101), Some(vec![100, 101]));
        assert_eq!(b.deposit(2, 201), Some(vec![200, 201]));
    }

    #[test]
    fn drain_count_closes_only_when_every_expected_edge_lands() {
        let b: EdgeBatcher<u8, i32> = EdgeBatcher::new(4);
        b.expect(1, 2);
        b.expect(2, 1);
        assert_eq!(b.remaining(), 3);
        let _ = b.deposit(1, 0);
        let _ = b.deposit(1, 1);
        assert_eq!(b.remaining(), 1, "key 2 still holds the drain open");
        let _ = b.deposit(2, 9);
        assert_eq!(b.remaining(), 0);
        assert_eq!(b.parked(), 0);
    }

    #[test]
    fn drain_parked_returns_entries_and_clears_expectations() {
        let b: EdgeBatcher<u8, i32> = EdgeBatcher::new(8);
        b.expect(1, 3);
        b.expect(2, 5);
        let _ = b.deposit(1, 10);
        let _ = b.deposit(1, 11);
        let mut drained = b.drain_parked();
        drained.sort_by_key(|(k, _)| *k);
        assert_eq!(drained, vec![(1, vec![10, 11])]);
        assert_eq!(b.parked(), 0);
        assert_eq!(b.remaining(), 0, "expectations cleared wholesale");
        // The batcher is reusable with fresh expectations.
        b.expect(3, 1);
        assert_eq!(b.deposit(3, 7), Some(vec![7]));
    }

    #[test]
    #[should_panic(expected = "unregistered")]
    fn unregistered_key_panics() {
        let b: EdgeBatcher<u8, i32> = EdgeBatcher::new(2);
        let _ = b.deposit(9, 0);
    }

    #[test]
    #[should_panic(expected = "more deposits than expected")]
    fn overflow_deposit_panics() {
        let b: EdgeBatcher<u8, i32> = EdgeBatcher::new(10);
        b.expect(1, 1);
        let _ = b.deposit(1, 0);
        let _ = b.deposit(1, 1);
    }

    #[test]
    fn concurrent_deposits_all_flush() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let b: EdgeBatcher<u8, usize> = EdgeBatcher::new(8);
        let n = 103;
        b.expect(0, n);
        let flushed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..4 {
                let b = &b;
                let flushed = &flushed;
                s.spawn(move || {
                    let mine = (0..n).filter(|i| i % 4 == t).count();
                    for _ in 0..mine {
                        if let Some(batch) = b.deposit(0, t) {
                            flushed.fetch_add(batch.len(), Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(flushed.load(Ordering::Relaxed), n);
        assert_eq!(b.parked(), 0);
    }
}
