//! The runtime: localities, scheduler, global operations.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Instant, SystemTime};

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use parking_lot::{Mutex, RwLock};

use crate::addr::GlobalAddress;
use crate::lco::{LcoCell, LcoSpec};
use crate::ledger::PeerFailure;
use crate::parcel::{decode_f64s, encode_f64s, ActionId, Parcel, Priority};
use crate::trace::{
    ClassCounters, ObsLevel, SpanRing, TraceEvent, TraceSet, CLASS_LCO_TRIGGER, CLASS_NONE, NO_TAG,
};
use crate::transport::{SharedMem, Transport, TransportHooks};

/// Runtime configuration.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of localities (the paper's MPI-rank-like units).
    pub localities: usize,
    /// Scheduler threads per locality (the paper ran one per core).
    pub workers_per_locality: usize,
    /// Honour graded [`Priority`] classes, most urgent first — the
    /// scheduling extension proposed in the paper's conclusions,
    /// generalised to `Priority::CLASSES` indexed run queues so a computed
    /// priority lattice can interleave phases.  When `false`, the
    /// scheduler is oblivious to priorities, reproducing the behaviour the
    /// paper measures.
    pub priority_scheduling: bool,
    /// How much the run records (paper §V-B): nothing, per-class counters,
    /// or full span rings for timeline export.
    pub obs: ObsLevel,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            localities: 1,
            workers_per_locality: 2,
            priority_scheduling: false,
            obs: ObsLevel::Off,
        }
    }
}

/// Either an active-message parcel or a locality-local lightweight thread.
enum Task {
    Parcel(Parcel),
    Local(Box<dyn FnOnce(&TaskCtx) + Send>, Priority),
}

impl Task {
    fn priority(&self) -> Priority {
        match self {
            Task::Parcel(p) => p.priority,
            Task::Local(_, pr) => *pr,
        }
    }
}

/// Action function signature: invoked at the target's locality.
pub type ActionFn = Arc<dyn Fn(&TaskCtx, GlobalAddress, &[u8]) + Send + Sync>;

/// Built-in action: deliver a set to an LCO (payload = f64 data).
pub const ACTION_LCO_SET: ActionId = ActionId(0);
/// Built-in action: register a continuation parcel on an LCO.
pub const ACTION_REGISTER_CONT: ActionId = ActionId(1);

/// Indexed run-queue classes (one shared injector per [`Priority`] level).
const N_CLASSES: usize = Priority::CLASSES as usize;

/// Every `STARVATION_PERIOD`-th dequeue serves the *least* urgent occupied
/// class instead of the most urgent one, so low classes drain (slowly)
/// even under a sustained stream of urgent work.
const STARVATION_PERIOD: u64 = 61;

struct Locality {
    /// One injector per priority class, indexed by [`Priority::level`]
    /// (0 = most urgent).  Replaces the former high/normal pair: a dequeue
    /// is a masked scan over at most `N_CLASSES` bits rather than a linear
    /// walk of a combined deque.
    queues: [Injector<Task>; N_CLASSES],
    /// Bit `c` set ⇒ `queues[c]` may be non-empty.  A hint: set after every
    /// push, cleared (and racily re-verified) on an empty steal, so no task
    /// can be stranded with its bit lost.
    occupancy: AtomicU32,
    /// Dequeues served, driving the anti-starvation escape hatch.
    served: AtomicU64,
    lcos: RwLock<Vec<Arc<LcoCell>>>,
    blocks: RwLock<Vec<RwLock<Vec<u8>>>>,
    msgs_sent: AtomicU64,
    bytes_sent: AtomicU64,
}

impl Locality {
    fn new() -> Self {
        Locality {
            queues: std::array::from_fn(|_| Injector::new()),
            occupancy: AtomicU32::new(0),
            served: AtomicU64::new(0),
            lcos: RwLock::new(Vec::new()),
            blocks: RwLock::new(Vec::new()),
            msgs_sent: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
        }
    }

    /// Push onto the class queue and publish the occupancy bit.
    fn push_class(&self, priority: Priority, task: Task) {
        let level = priority.level() as usize;
        self.queues[level].push(task);
        self.occupancy.fetch_or(1 << level, Ordering::Release);
    }

    /// Queue `level` came up empty: clear its hint bit, then re-set it if a
    /// concurrent push raced the clear.
    fn note_empty(&self, level: usize) {
        self.occupancy
            .fetch_and(!(1u32 << level), Ordering::Release);
        if !self.queues[level].is_empty() {
            self.occupancy.fetch_or(1 << level, Ordering::Release);
        }
    }

    /// Batch-steal from class `level` into the worker's deque.
    fn try_pop_batch(&self, level: usize, local: &Worker<Task>) -> Option<Task> {
        loop {
            match self.queues[level].steal_batch_and_pop(local) {
                Steal::Success(t) => return Some(t),
                Steal::Empty => {
                    self.note_empty(level);
                    return None;
                }
                Steal::Retry => {}
            }
        }
    }

    /// Steal a single task from class `level` (no batching — used by the
    /// anti-starvation hatch so low-priority work is not bulk-promoted
    /// into the worker's local deque).
    fn try_steal_one(&self, level: usize) -> Option<Task> {
        loop {
            match self.queues[level].steal() {
                Steal::Success(t) => return Some(t),
                Steal::Empty => {
                    self.note_empty(level);
                    return None;
                }
                Steal::Retry => {}
            }
        }
    }
}

/// Outcome of one [`Runtime::run`] to quiescence.
#[derive(Debug)]
pub struct RunReport {
    /// Wall-clock nanoseconds of the run.
    pub wall_ns: u64,
    /// Tasks (parcels + lightweight threads) executed.
    pub tasks: u64,
    /// Inter-locality messages sent.
    pub messages: u64,
    /// Inter-locality bytes sent (headers included).
    pub bytes: u64,
    /// Collected trace events (empty unless the obs level kept spans).
    pub trace: TraceSet,
    /// Per-class event counters aggregated over all workers (populated at
    /// obs levels `counters` and `full`).
    pub counters: ClassCounters,
    /// Span events overwritten because a worker's ring filled up.
    pub trace_dropped: u64,
    /// Realtime clock at run start (ns since the unix epoch) — the anchor
    /// cross-process trace merging aligns rank clocks with.
    pub run_start_unix_ns: u64,
    /// Set when the transport declared a peer locality dead during the run
    /// ([`Transport::failed_peer`]): who, in which termination epoch, and
    /// why.  Without fencing the run aborted and its outputs are partial:
    /// local work drained, but parcels to and from the lost locality (and
    /// everything downstream of them in the DAG) never executed.  `None`
    /// is a normal run to quiescence.
    pub lost_peer: Option<PeerFailure>,
    /// Whether the transport fenced the dead peer
    /// ([`Transport::fence_peer`]): the run continued to quiescence over
    /// the *survivor* set and the runtime is positioned for a recovery
    /// run, rather than having aborted with queues drained.
    pub fenced: bool,
}

impl RunReport {
    /// Whether the run completed normally (no peer was lost).
    pub fn completed(&self) -> bool {
        self.lost_peer.is_none()
    }
}

/// The AMT runtime.
///
/// ```
/// use dashmm_amt::{LcoSpec, Runtime, RuntimeConfig};
///
/// let rt = Runtime::new(RuntimeConfig { localities: 2, ..Default::default() });
/// let sum = rt.lco_new(1, LcoSpec::reduce_sum(1, 2));
/// rt.seed(0, move |ctx| {
///     ctx.lco_set(sum, &[1.5]); // crosses the network as a parcel
///     ctx.lco_set(sum, &[2.5]);
/// });
/// let report = rt.run();
/// assert_eq!(rt.lco_get(sum), Some(vec![4.0]));
/// assert!(report.messages >= 1);
/// ```
pub struct Runtime {
    cfg: RuntimeConfig,
    localities: Vec<Locality>,
    actions: RwLock<Vec<ActionFn>>,
    pending: AtomicI64,
    tasks_run: AtomicU64,
    shutdown: AtomicBool,
    running: AtomicBool,
    epoch: Instant,
    trace_sink: Mutex<Vec<(u32, usize, SpanRing)>>,
    transport: Arc<dyn Transport>,
}

impl Runtime {
    /// Create a single-process runtime; every locality is a thread group in
    /// this process (the [`SharedMem`] transport).
    pub fn new(cfg: RuntimeConfig) -> Arc<Self> {
        let localities = cfg.localities as u32;
        Self::with_transport(cfg, Arc::new(SharedMem::new(localities)))
    }

    /// Create a runtime whose remote parcels travel over `transport`.
    ///
    /// The transport spans `cfg.localities` localities total; only the
    /// ones `transport.is_local` reports get worker threads here.  All
    /// processes of a distributed run must build identical runtimes (same
    /// config, same LCO allocation order, same action registration order)
    /// so that global addresses and action ids agree — the SPMD discipline
    /// of the paper's runtime.
    pub fn with_transport(cfg: RuntimeConfig, transport: Arc<dyn Transport>) -> Arc<Self> {
        assert!(cfg.localities >= 1 && cfg.workers_per_locality >= 1);
        assert_eq!(
            cfg.localities,
            transport.num_ranks() as usize,
            "transport must span exactly the configured localities"
        );
        let localities = (0..cfg.localities).map(|_| Locality::new()).collect();
        let rt = Arc::new(Runtime {
            cfg,
            localities,
            actions: RwLock::new(Vec::new()),
            pending: AtomicI64::new(0),
            tasks_run: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            running: AtomicBool::new(false),
            epoch: Instant::now(),
            trace_sink: Mutex::new(Vec::new()),
            transport,
        });
        // Wire the transport back into the scheduler.  Weak: the runtime
        // owns the transport, and progress threads may outlive a run.
        let weak = Arc::downgrade(&rt);
        let deliver = {
            let weak = weak.clone();
            Box::new(move |p: Parcel| {
                if let Some(rt) = weak.upgrade() {
                    debug_assert!(rt.is_local(p.target.locality));
                    rt.enqueue(p.target.locality, Task::Parcel(p));
                }
            })
        };
        let locally_idle = {
            let weak = weak.clone();
            Box::new(move || {
                weak.upgrade()
                    .map(|rt| rt.pending.load(Ordering::SeqCst) == 0)
                    .unwrap_or(true)
            })
        };
        let epoch = rt.epoch;
        let now_ns = Box::new(move || epoch.elapsed().as_nanos() as u64);
        rt.transport.attach(TransportHooks {
            deliver,
            locally_idle,
            now_ns,
        });
        // Built-in actions.
        let a0 = rt.register_action(Arc::new(|ctx: &TaskCtx, target, payload: &[u8]| {
            let data = decode_f64s(payload);
            ctx.lco_set(target, &data);
        }));
        debug_assert_eq!(a0, ACTION_LCO_SET);
        let a1 = rt.register_action(Arc::new(|ctx: &TaskCtx, target, payload: &[u8]| {
            let (parcel, include_data) = decode_continuation(payload);
            ctx.runtime()
                .register_continuation_local(ctx, target, parcel, include_data);
        }));
        debug_assert_eq!(a1, ACTION_REGISTER_CONT);
        rt
    }

    /// Configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// Number of localities.
    pub fn num_localities(&self) -> u32 {
        self.cfg.localities as u32
    }

    /// Whether `locality` is hosted by this process (always true with the
    /// default [`SharedMem`] transport).
    pub fn is_local(&self, locality: u32) -> bool {
        self.transport.is_local(locality)
    }

    /// The transport carrying remote parcels.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// Register an action; must happen before the parcels using it are sent.
    pub fn register_action(&self, f: ActionFn) -> ActionId {
        let mut acts = self.actions.write();
        acts.push(f);
        ActionId(acts.len() as u32 - 1)
    }

    /// Allocate an LCO on a locality.
    pub fn lco_new(&self, locality: u32, spec: LcoSpec) -> GlobalAddress {
        let cell = Arc::new(LcoCell::new(spec));
        let mut lcos = self.localities[locality as usize].lcos.write();
        lcos.push(cell);
        GlobalAddress::new(locality, lcos.len() as u32 - 1)
    }

    fn lco(&self, addr: GlobalAddress) -> Arc<LcoCell> {
        self.localities[addr.locality as usize].lcos.read()[addr.index as usize].clone()
    }

    /// Read a triggered LCO's data (post-run); `None` if not yet triggered.
    pub fn lco_get(&self, addr: GlobalAddress) -> Option<Vec<f64>> {
        let cell = self.lco(addr);
        let st = cell.state.lock();
        if st.triggered {
            Some(st.data.clone())
        } else {
            None
        }
    }

    /// Whether the LCO at `addr` has triggered.
    pub fn lco_triggered(&self, addr: GlobalAddress) -> bool {
        self.lco(addr).state.lock().triggered
    }

    /// Inputs the LCO at `addr` still expects (0 once triggered).
    pub fn lco_remaining(&self, addr: GlobalAddress) -> u32 {
        self.lco(addr).state.lock().remaining
    }

    /// Re-arm an *untriggered* LCO with a new expected-input count, for
    /// recovery after a locality loss: re-ownership changes how many
    /// inputs (and batched flushes) a surviving LCO will still receive, and
    /// exactly-once accounting requires the count to match precisely.
    /// Data already reduced into the cell and its trigger closure are
    /// preserved.  Returns `false` (without touching the cell) if the LCO
    /// has already triggered; must not race an active run.
    pub fn lco_rearm(&self, addr: GlobalAddress, remaining: u32) -> bool {
        assert!(remaining > 0, "re-arming with 0 inputs would never trigger");
        let cell = self.lco(addr);
        let mut st = cell.state.lock();
        if st.triggered {
            return false;
        }
        st.remaining = remaining;
        true
    }

    /// Drop every LCO, memory block and user-registered action, keeping
    /// only the built-in actions.  For the iterative use case: each DAG
    /// evaluation instantiates a fresh LCO network, and without a reset the
    /// slabs of completed evaluations would accumulate.  All previously
    /// returned addresses and action ids (other than the built-ins) are
    /// invalidated; must not be called during a run.
    pub fn reset(&self) {
        assert_eq!(
            self.pending.load(Ordering::SeqCst),
            0,
            "reset() must not race an active run"
        );
        for loc in &self.localities {
            loc.lcos.write().clear();
            loc.blocks.write().clear();
        }
        self.actions.write().truncate(2);
    }

    /// Allocate a raw global memory block (the memput/memget face of the
    /// global address space).
    pub fn alloc_block(&self, locality: u32, len: usize) -> GlobalAddress {
        let mut blocks = self.localities[locality as usize].blocks.write();
        blocks.push(RwLock::new(vec![0u8; len]));
        GlobalAddress::new(locality, blocks.len() as u32 - 1)
    }

    /// Copy bytes into a global block at an offset.
    pub fn memput(&self, addr: GlobalAddress, offset: usize, data: &[u8]) {
        let blocks = self.localities[addr.locality as usize].blocks.read();
        let mut b = blocks[addr.index as usize].write();
        b[offset..offset + data.len()].copy_from_slice(data);
    }

    /// Copy bytes out of a global block.
    pub fn memget(&self, addr: GlobalAddress, offset: usize, len: usize) -> Vec<u8> {
        let blocks = self.localities[addr.locality as usize].blocks.read();
        let b = blocks[addr.index as usize].read();
        b[offset..offset + len].to_vec()
    }

    /// Enqueue a seed task before (or during) a run.  In a distributed
    /// (SPMD) run every process executes the same seeding code; seeds for
    /// localities another process hosts are dropped here, because that
    /// process seeds them itself.
    pub fn seed(&self, locality: u32, f: impl FnOnce(&TaskCtx) + Send + 'static) {
        if !self.is_local(locality) {
            return;
        }
        self.enqueue(locality, Task::Local(Box::new(f), Priority::Normal));
    }

    /// Enqueue a seed parcel (dropped for localities hosted elsewhere, as
    /// with [`Runtime::seed`]).
    pub fn seed_parcel(&self, parcel: Parcel) {
        let loc = parcel.target.locality;
        if !self.is_local(loc) {
            return;
        }
        self.enqueue(loc, Task::Parcel(parcel));
    }

    fn enqueue(&self, locality: u32, task: Task) {
        debug_assert!(
            self.is_local(locality),
            "enqueue targets locality {locality}, which another process hosts"
        );
        self.pending.fetch_add(1, Ordering::SeqCst);
        let l = &self.localities[locality as usize];
        let priority = if self.cfg.priority_scheduling {
            task.priority()
        } else {
            Priority::Normal
        };
        l.push_class(priority, task);
    }

    fn register_continuation_local(
        &self,
        ctx: &TaskCtx,
        addr: GlobalAddress,
        parcel: Parcel,
        include_data: bool,
    ) {
        debug_assert_eq!(
            addr.locality, ctx.locality,
            "continuation registration must be local"
        );
        let cell = self.lco(addr);
        let mut st = cell.state.lock();
        if st.triggered {
            let mut p = parcel;
            if include_data {
                encode_f64s(&st.data, &mut p.payload);
            }
            drop(st);
            ctx.send(p);
        } else {
            st.waiting.push((parcel, include_data));
        }
    }

    /// Execute until quiescence: every enqueued task (and everything they
    /// transitively spawn) has completed — on *every* participating
    /// process when the transport is distributed.  Returns run statistics.
    pub fn run(&self) -> RunReport {
        let t0 = Instant::now();
        let msgs0: u64 = self
            .localities
            .iter()
            .map(|l| l.msgs_sent.load(Ordering::Relaxed))
            .sum();
        let bytes0: u64 = self
            .localities
            .iter()
            .map(|l| l.bytes_sent.load(Ordering::Relaxed))
            .sum();
        let net0 = self.transport.stats();
        let tasks0 = self.tasks_run.load(Ordering::Relaxed);
        let run_start_ns = self.epoch.elapsed().as_nanos() as u64;
        // Captured at the same instant as the monotonic run clock: the
        // realtime anchor cross-process trace merging aligns ranks with.
        let run_start_unix_ns = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        // Concurrent runs would share the pending counter and shutdown
        // flag, silently corrupting quiescence detection — refuse early.
        assert!(
            self.running
                .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok(),
            "Runtime::run() is already active on another thread"
        );
        self.shutdown.store(false, Ordering::SeqCst);
        if self.cfg.obs.enabled() {
            // Discard communication spans from before this run.
            let _ = self.transport.drain_trace();
        }
        // New run epoch: parcels that raced ahead of this run are released
        // into the scheduler now.
        self.transport.begin_run();

        let mut lost_peer: Option<PeerFailure> = None;
        let mut fenced = false;
        std::thread::scope(|scope| {
            let mut n_local = 0usize;
            for (loc_id, loc) in self.localities.iter().enumerate() {
                if !self.transport.is_local(loc_id as u32) {
                    continue;
                }
                n_local += 1;
                // Per-locality worker deques with intra-locality stealing
                // (HPX-5 was configured with local randomized workstealing).
                let workers: Vec<Worker<Task>> = (0..self.cfg.workers_per_locality)
                    .map(|_| Worker::new_lifo())
                    .collect();
                let stealers: Arc<Vec<Stealer<Task>>> =
                    Arc::new(workers.iter().map(|w| w.stealer()).collect());
                for (wid, w) in workers.into_iter().enumerate() {
                    let stealers = Arc::clone(&stealers);
                    scope.spawn(move || {
                        self.worker_loop(loc_id as u32, wid, w, &stealers, loc);
                    });
                }
            }
            assert!(n_local > 0, "no locality of this runtime is local");
            // Quiescence monitor: local idleness alone with the shared-
            // memory transport; global termination detection otherwise.
            // When a transport declares a peer dead there are two paths:
            // a transport that can *fence* the dead rank (exclude it from
            // termination detection and collectives) keeps the run going
            // to quiescence over the survivors, positioning the caller
            // for a recovery run; otherwise the run aborts instead of
            // spinning forever on parcels that will never arrive.  Either
            // way the caller sees the loss in `RunReport::lost_peer`.
            loop {
                let idle = self.pending.load(Ordering::SeqCst) == 0;
                if self.transport.poll_quiescence(idle) {
                    break;
                }
                if lost_peer.is_none() {
                    if let Some(fail) = self.transport.failed_peer_info() {
                        lost_peer = Some(fail);
                        fenced = self.transport.fence_peer(fail.rank);
                        if !fenced {
                            break;
                        }
                    }
                }
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            self.shutdown.store(true, Ordering::SeqCst);
        });
        if lost_peer.is_some() && !fenced {
            // The progress thread may still deliver parcels from surviving
            // peers after the workers exited; discard whatever is queued so
            // the pending counter returns to zero and `reset()` (and a
            // subsequent recovery run) stay usable after the abort.
            for loc in &self.localities {
                for q in &loc.queues {
                    loop {
                        match q.steal() {
                            Steal::Success(_) => {}
                            Steal::Empty => break,
                            Steal::Retry => {}
                        }
                    }
                }
                loc.occupancy.store(0, Ordering::SeqCst);
            }
            self.pending.store(0, Ordering::SeqCst);
        }

        let local_localities: Vec<u32> = (0..self.cfg.localities as u32)
            .filter(|&l| self.transport.is_local(l))
            .collect();
        let local_workers = local_localities.len() * self.cfg.workers_per_locality;
        let rebase = |buf: &mut Vec<TraceEvent>| {
            for e in buf.iter_mut() {
                e.start_ns = e.start_ns.saturating_sub(run_start_ns);
                e.end_ns = e.end_ns.saturating_sub(run_start_ns);
            }
        };
        let mut comm = if self.cfg.obs.enabled() {
            self.transport.drain_trace()
        } else {
            Vec::new()
        };
        // The progress thread counts as one more lane when it traced.
        let mut trace = TraceSet::new(local_workers + usize::from(!comm.is_empty()));
        let mut counters = ClassCounters::default();
        let mut trace_dropped = 0u64;
        let mut rings: Vec<(u32, usize, SpanRing)> = self.trace_sink.lock().drain(..).collect();
        rings.sort_by_key(|(loc, wid, _)| (*loc, *wid));
        for (loc, wid, ring) in rings {
            let (mut buf, ring_counters, dropped) = ring.into_parts();
            counters.merge(&ring_counters);
            trace_dropped += dropped;
            rebase(&mut buf);
            let label = if local_localities.len() > 1 {
                format!("L{loc}.w{wid}")
            } else {
                format!("w{wid}")
            };
            trace.push_lane(label, buf);
        }
        if !comm.is_empty() {
            rebase(&mut comm);
            trace.push_lane("net", comm);
        }
        self.running.store(false, Ordering::SeqCst);
        let msgs1: u64 = self
            .localities
            .iter()
            .map(|l| l.msgs_sent.load(Ordering::Relaxed))
            .sum();
        let bytes1: u64 = self
            .localities
            .iter()
            .map(|l| l.bytes_sent.load(Ordering::Relaxed))
            .sum();
        let net1 = self.transport.stats();
        RunReport {
            wall_ns: t0.elapsed().as_nanos() as u64,
            tasks: self.tasks_run.load(Ordering::Relaxed) - tasks0,
            messages: (msgs1 - msgs0) + (net1.parcels_sent - net0.parcels_sent),
            bytes: (bytes1 - bytes0) + (net1.bytes_sent - net0.bytes_sent),
            trace,
            counters,
            trace_dropped,
            run_start_unix_ns,
            lost_peer,
            fenced,
        }
    }

    fn worker_loop(
        &self,
        locality: u32,
        worker: usize,
        local: Worker<Task>,
        stealers: &[Stealer<Task>],
        loc: &Locality,
    ) {
        let ctx = TaskCtx {
            rt: self,
            locality,
            worker,
            local,
            trace: RefCell::new(SpanRing::with_level(self.cfg.obs)),
        };
        let mut idle = 0u32;
        loop {
            if let Some(task) = self.find_task(&ctx, stealers, loc, worker) {
                self.execute(&ctx, task);
                self.tasks_run.fetch_add(1, Ordering::Relaxed);
                self.pending.fetch_sub(1, Ordering::SeqCst);
                idle = 0;
                continue;
            }
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            idle += 1;
            if idle < 64 {
                std::hint::spin_loop();
            } else if idle < 256 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        }
        if self.cfg.obs.enabled() {
            self.trace_sink
                .lock()
                .push((locality, worker, ctx.trace.into_inner()));
        }
    }

    fn find_task(
        &self,
        ctx: &TaskCtx,
        stealers: &[Stealer<Task>],
        loc: &Locality,
        worker: usize,
    ) -> Option<Task> {
        // Indexed multi-level dequeue: the occupancy mask turns "find the
        // most urgent non-empty class" into a handful of bit tests instead
        // of the former linear high-first deque scan.
        let normal = Priority::Normal.level() as usize;
        let mask = loc.occupancy.load(Ordering::Acquire);
        if mask != 0 && self.cfg.priority_scheduling {
            // Anti-starvation escape hatch: periodically serve the least
            // urgent occupied class so Normal-and-below work still drains
            // under a sustained stream of urgent tasks.
            let turn = loc.served.fetch_add(1, Ordering::Relaxed);
            if turn % STARVATION_PERIOD == STARVATION_PERIOD - 1 {
                // Least-urgent work may live in a shared class queue or —
                // after a batch steal promoted it — in the local deque.
                let most = mask.trailing_zeros();
                let least = 31 - mask.leading_zeros();
                if least > most {
                    if let Some(t) = loc.try_steal_one(least as usize) {
                        return Some(t);
                    }
                }
                if let Some(t) = ctx.local.pop() {
                    return Some(t);
                }
            }
        }
        // Classes more urgent than Normal pre-empt the worker's own deque
        // (the role the high injector used to play).
        if mask != 0 {
            for level in 0..normal {
                if mask & (1 << level) != 0 {
                    if let Some(t) = loc.try_pop_batch(level, &ctx.local) {
                        return Some(t);
                    }
                }
            }
        }
        if let Some(t) = ctx.local.pop() {
            return Some(t);
        }
        // Remaining classes, most urgent first (re-read the mask: urgent
        // work may have arrived while the local deque drained).
        let mask = loc.occupancy.load(Ordering::Acquire);
        if mask != 0 {
            for level in 0..N_CLASSES {
                if mask & (1 << level) != 0 {
                    if let Some(t) = loc.try_pop_batch(level, &ctx.local) {
                        return Some(t);
                    }
                }
            }
        }
        // Randomized stealing from sibling workers.
        let n = stealers.len();
        if n > 1 {
            let seed = self.tasks_run.load(Ordering::Relaxed) as usize + worker;
            for k in 0..n {
                let v = (seed + k) % n;
                if v == worker {
                    continue;
                }
                loop {
                    match stealers[v].steal() {
                        Steal::Success(t) => return Some(t),
                        Steal::Empty => break,
                        Steal::Retry => {}
                    }
                }
            }
        }
        None
    }

    fn execute(&self, ctx: &TaskCtx, task: Task) {
        match task {
            Task::Parcel(p) => {
                debug_assert_eq!(
                    p.target.locality, ctx.locality,
                    "parcel delivered to wrong locality"
                );
                let action = self.actions.read()[p.action.0 as usize].clone();
                action(ctx, p.target, &p.payload);
            }
            Task::Local(f, _) => f(ctx),
        }
    }
}

fn encode_continuation(parcel: &Parcel, include_data: bool, out: &mut Vec<u8>) {
    out.extend_from_slice(&parcel.action.0.to_le_bytes());
    out.extend_from_slice(&parcel.target.pack().to_le_bytes());
    out.push(include_data as u8);
    out.push(parcel.priority.level());
    out.extend_from_slice(&(parcel.payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&parcel.payload);
}

fn decode_continuation(bytes: &[u8]) -> (Parcel, bool) {
    let action = ActionId(u32::from_le_bytes(bytes[0..4].try_into().unwrap()));
    let target = GlobalAddress::unpack(u64::from_le_bytes(bytes[4..12].try_into().unwrap()));
    let include_data = bytes[12] != 0;
    let priority = Priority::class(bytes[13]);
    let plen = u32::from_le_bytes(bytes[14..18].try_into().unwrap()) as usize;
    let payload = bytes[18..18 + plen].to_vec();
    let p = Parcel::graded(action, target, payload, priority);
    (p, include_data)
}

/// Per-task execution context: the facing API of the runtime inside
/// actions, trigger closures and local threads.
pub struct TaskCtx<'a> {
    rt: &'a Runtime,
    /// Locality this task runs on.
    pub locality: u32,
    /// Worker index within the locality.
    pub worker: usize,
    local: Worker<Task>,
    trace: RefCell<SpanRing>,
}

impl<'a> TaskCtx<'a> {
    /// The runtime.
    pub fn runtime(&self) -> &'a Runtime {
        self.rt
    }

    /// Spawn a locality-local lightweight thread.
    pub fn spawn(&self, f: impl FnOnce(&TaskCtx) + Send + 'static) {
        self.spawn_with_priority(f, Priority::Normal);
    }

    /// Spawn with an explicit priority.
    pub fn spawn_with_priority(
        &self,
        f: impl FnOnce(&TaskCtx) + Send + 'static,
        priority: Priority,
    ) {
        self.rt.pending.fetch_add(1, Ordering::SeqCst);
        let task = Task::Local(Box::new(f), priority);
        if self.rt.cfg.priority_scheduling && priority != Priority::Normal {
            // Graded work goes through the shared class queues so every
            // worker sees its rank; Normal work stays on the cheap local
            // deque as before.
            self.rt.localities[self.locality as usize].push_class(priority, task);
        } else {
            self.local.push(task);
        }
    }

    /// Send a parcel; local targets are enqueued directly, other
    /// localities of this process cross the (counted) in-process network,
    /// and localities hosted elsewhere go through the transport.
    pub fn send(&self, parcel: Parcel) {
        if parcel.target.locality == self.locality {
            self.rt.pending.fetch_add(1, Ordering::SeqCst);
            let task = Task::Parcel(parcel);
            let priority = task.priority();
            if self.rt.cfg.priority_scheduling && priority != Priority::Normal {
                self.rt.localities[self.locality as usize].push_class(priority, task);
            } else {
                self.local.push(task);
            }
        } else if self.rt.is_local(parcel.target.locality) {
            let src = &self.rt.localities[self.locality as usize];
            src.msgs_sent.fetch_add(1, Ordering::Relaxed);
            src.bytes_sent
                .fetch_add(parcel.wire_bytes(), Ordering::Relaxed);
            self.rt
                .enqueue(parcel.target.locality, Task::Parcel(parcel));
        } else {
            // The transport counts parcels and bytes itself; counting here
            // too would double-book the run report.
            self.rt.transport.send(parcel);
        }
    }

    /// Deliver one input to an LCO.  Local LCOs are reduced immediately;
    /// remote ones receive a built-in set parcel.  When the input completes
    /// the LCO's expected inputs, its continuations are spawned as a new
    /// lightweight thread at the LCO's locality.
    pub fn lco_set(&self, addr: GlobalAddress, data: &[f64]) {
        self.lco_set_with_priority(addr, data, Priority::Normal);
    }

    /// [`TaskCtx::lco_set`] with an explicit continuation priority.
    pub fn lco_set_with_priority(&self, addr: GlobalAddress, data: &[f64], priority: Priority) {
        if addr.locality != self.locality {
            let mut payload = Vec::with_capacity(data.len() * 8);
            encode_f64s(data, &mut payload);
            let mut p = Parcel::new(ACTION_LCO_SET, addr, payload);
            p.priority = priority;
            self.send(p);
            return;
        }
        let cell = self.rt.lco(addr);
        let fired = {
            let mut st = cell.state.lock();
            let t0 = if self.rt.cfg.obs.enabled() && st.trace_class != CLASS_NONE {
                Some((st.trace_class, self.now_ns()))
            } else {
                None
            };
            let fired = st.reduce(data);
            if let Some((class, start)) = t0 {
                let end = self.now_ns();
                self.trace
                    .borrow_mut()
                    .record_span(class, NO_TAG, start, end);
            }
            fired
        };
        if fired {
            if self.rt.cfg.obs.spans() {
                let now = self.now_ns();
                self.trace
                    .borrow_mut()
                    .record_instant(CLASS_LCO_TRIGGER, now);
            }
            let cell2 = Arc::clone(&cell);
            self.spawn_with_priority(
                move |ctx| {
                    let (on_trigger, waiting) = {
                        let mut st = cell2.state.lock();
                        (st.on_trigger.take(), std::mem::take(&mut st.waiting))
                    };
                    let st = cell2.state.lock();
                    if let Some(f) = on_trigger {
                        f(ctx, &st.data);
                    }
                    for (mut parcel, include_data) in waiting {
                        if include_data {
                            encode_f64s(&st.data, &mut parcel.payload);
                        }
                        ctx.send(parcel);
                    }
                },
                priority,
            );
        }
    }

    /// Register a continuation parcel to fire (once) when the LCO triggers;
    /// if it already has, the parcel is sent immediately.  `include_data`
    /// appends the LCO data to the parcel payload.
    pub fn register_continuation(&self, addr: GlobalAddress, parcel: Parcel, include_data: bool) {
        if addr.locality == self.locality {
            self.rt
                .register_continuation_local(self, addr, parcel, include_data);
        } else {
            let mut payload = Vec::new();
            encode_continuation(&parcel, include_data, &mut payload);
            self.send(Parcel::new(ACTION_REGISTER_CONT, addr, payload));
        }
    }

    /// Nanoseconds since the runtime epoch.
    pub fn now_ns(&self) -> u64 {
        self.rt.epoch.elapsed().as_nanos() as u64
    }

    /// The recording level this runtime was configured with.
    pub fn obs_level(&self) -> ObsLevel {
        self.rt.cfg.obs
    }

    /// Record a traced span around `f`, tagged with an event class.
    pub fn traced<R>(&self, class: u8, f: impl FnOnce() -> R) -> R {
        self.traced_tagged(class, NO_TAG, f)
    }

    /// [`TaskCtx::traced`] attributing the span to DAG edge `tag`.
    pub fn traced_tagged<R>(&self, class: u8, tag: u32, f: impl FnOnce() -> R) -> R {
        if !self.rt.cfg.obs.enabled() {
            return f();
        }
        let start = self.now_ns();
        let r = f();
        let end = self.now_ns();
        self.trace.borrow_mut().record_span(class, tag, start, end);
        r
    }

    /// Record an explicit span (timestamps from [`TaskCtx::now_ns`]) —
    /// for call sites that can't wrap the work in a closure, such as the
    /// batched operator path attributing one flush across its edges.
    pub fn record_span(&self, class: u8, tag: u32, start_ns: u64, end_ns: u64) {
        if self.rt.cfg.obs.enabled() {
            self.trace
                .borrow_mut()
                .record_span(class, tag, start_ns, end_ns);
        }
    }

    /// Record a zero-duration marker at the current time.
    pub fn record_instant(&self, class: u8) {
        if self.rt.cfg.obs.enabled() {
            let now = self.now_ns();
            self.trace.borrow_mut().record_instant(class, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lco::LcoOp;

    fn rt(localities: usize, workers: usize) -> Arc<Runtime> {
        Runtime::new(RuntimeConfig {
            localities,
            workers_per_locality: workers,
            priority_scheduling: false,
            obs: ObsLevel::Off,
        })
    }

    #[test]
    fn empty_run_terminates() {
        let r = rt(1, 1);
        let rep = r.run();
        assert_eq!(rep.tasks, 0);
    }

    #[test]
    fn single_task_runs() {
        let r = rt(1, 2);
        let flag = Arc::new(AtomicU64::new(0));
        let f2 = flag.clone();
        r.seed(0, move |_| {
            f2.store(42, Ordering::SeqCst);
        });
        let rep = r.run();
        assert_eq!(flag.load(Ordering::SeqCst), 42);
        assert_eq!(rep.tasks, 1);
    }

    #[test]
    fn lco_reduction_network() {
        // Three inputs summed into an LCO, whose trigger writes a future.
        let r = rt(1, 2);
        let sum = r.lco_new(0, LcoSpec::reduce_sum(2, 3));
        let done = r.lco_new(0, LcoSpec::future(2));
        // Attach a trigger by registering a continuation that copies data.
        {
            let r2 = r.clone();
            let sum2 = sum;
            let done2 = done;
            r.seed(0, move |ctx| {
                let _ = &r2;
                ctx.register_continuation(
                    sum2,
                    Parcel::new(ACTION_LCO_SET, done2, Vec::new()),
                    true,
                );
                ctx.lco_set(sum2, &[1.0, 10.0]);
                ctx.lco_set(sum2, &[2.0, 20.0]);
                ctx.lco_set(sum2, &[3.0, 30.0]);
            });
        }
        r.run();
        assert_eq!(r.lco_get(done), Some(vec![6.0, 60.0]));
    }

    #[test]
    fn cross_locality_parcel_counted() {
        let r = rt(2, 1);
        let fut = r.lco_new(1, LcoSpec::future(1));
        r.seed(0, move |ctx| {
            ctx.lco_set(fut, &[7.0]); // remote: becomes a parcel
        });
        let rep = r.run();
        assert_eq!(r.lco_get(fut), Some(vec![7.0]));
        assert_eq!(rep.messages, 1);
        assert!(rep.bytes >= 8);
    }

    #[test]
    fn local_sets_do_not_touch_network() {
        let r = rt(2, 1);
        let fut = r.lco_new(0, LcoSpec::future(1));
        r.seed(0, move |ctx| ctx.lco_set(fut, &[1.0]));
        let rep = r.run();
        assert_eq!(rep.messages, 0);
    }

    #[test]
    fn trigger_closure_runs_with_data() {
        let r = rt(1, 2);
        let out = r.lco_new(0, LcoSpec::future(1));
        let spec = LcoSpec::reduce_sum(1, 2).with_trigger(Box::new(move |ctx, data| {
            ctx.lco_set(out, &[data[0] * 2.0]);
        }));
        let sum = r.lco_new(0, spec);
        r.seed(0, move |ctx| {
            ctx.lco_set(sum, &[3.0]);
            ctx.lco_set(sum, &[4.0]);
        });
        r.run();
        assert_eq!(r.lco_get(out), Some(vec![14.0]));
    }

    #[test]
    fn continuation_after_trigger_fires_immediately() {
        let r = rt(1, 1);
        let src = r.lco_new(0, LcoSpec::future(1));
        let dst = r.lco_new(0, LcoSpec::future(1));
        r.seed(0, move |ctx| {
            ctx.lco_set(src, &[5.0]);
            // src is already triggered when this registration arrives.
            ctx.spawn(move |ctx2| {
                ctx2.register_continuation(src, Parcel::new(ACTION_LCO_SET, dst, vec![]), true);
            });
        });
        r.run();
        assert_eq!(r.lco_get(dst), Some(vec![5.0]));
    }

    #[test]
    fn fan_out_fan_in_across_localities() {
        // One task fans out to 4 localities; each computes and feeds a
        // reduction back on locality 0.
        let r = rt(4, 2);
        let sum = r.lco_new(0, LcoSpec::reduce_sum(1, 4));
        let compute = r.register_action(Arc::new(move |ctx, _target, payload: &[u8]| {
            let x = decode_f64s(payload)[0];
            ctx.lco_set(sum, &[x * x]);
        }));
        r.seed(0, move |ctx| {
            for loc in 0..4u32 {
                let mut payload = Vec::new();
                encode_f64s(&[(loc + 1) as f64], &mut payload);
                ctx.send(Parcel::new(compute, GlobalAddress::new(loc, 0), payload));
            }
        });
        let rep = r.run();
        assert_eq!(r.lco_get(sum), Some(vec![1.0 + 4.0 + 9.0 + 16.0]));
        assert!(
            rep.messages >= 3,
            "three remote parcels at least, got {}",
            rep.messages
        );
    }

    #[test]
    fn memput_memget_roundtrip() {
        let r = rt(2, 1);
        let block = r.alloc_block(1, 64);
        r.memput(block, 8, &[1, 2, 3, 4]);
        assert_eq!(r.memget(block, 8, 4), vec![1, 2, 3, 4]);
        assert_eq!(r.memget(block, 0, 2), vec![0, 0]);
    }

    #[test]
    fn deep_chain_terminates() {
        // A 1000-deep dependency chain exercises trigger-spawn recursion.
        let r = rt(1, 2);
        let mut prev = r.lco_new(0, LcoSpec::future(1));
        let first = prev;
        for _ in 0..1000 {
            let next = r.lco_new(0, LcoSpec::future(1));
            r.seed(0, {
                let p = prev;
                move |ctx| {
                    ctx.register_continuation(p, Parcel::new(ACTION_LCO_SET, next, vec![]), true);
                }
            });
            prev = next;
        }
        let last = prev;
        r.seed(0, move |ctx| ctx.lco_set(first, &[1.25]));
        r.run();
        assert_eq!(r.lco_get(last), Some(vec![1.25]));
    }

    #[test]
    fn many_tasks_all_workers() {
        let r = rt(1, 4);
        let total = Arc::new(AtomicU64::new(0));
        for _ in 0..500 {
            let t = total.clone();
            r.seed(0, move |_| {
                t.fetch_add(1, Ordering::Relaxed);
            });
        }
        let rep = r.run();
        assert_eq!(total.load(Ordering::SeqCst), 500);
        assert_eq!(rep.tasks, 500);
    }

    #[test]
    fn custom_lco_op_used_by_runtime() {
        let r = rt(1, 1);
        let spec = LcoSpec {
            size: 1,
            inputs: 3,
            op: LcoOp::Custom(Box::new(|d, i| d[0] = d[0].max(i[0]))),
            on_trigger: None,
            trace_class: u8::MAX,
        };
        let m = r.lco_new(0, spec);
        r.seed(0, move |ctx| {
            ctx.lco_set(m, &[2.0]);
            ctx.lco_set(m, &[9.0]);
            ctx.lco_set(m, &[4.0]);
        });
        r.run();
        assert_eq!(r.lco_get(m), Some(vec![9.0]));
    }

    #[test]
    fn tracing_collects_events() {
        let r = Runtime::new(RuntimeConfig {
            localities: 1,
            workers_per_locality: 2,
            priority_scheduling: false,
            obs: ObsLevel::Full,
        });
        r.seed(0, |ctx| {
            ctx.traced_tagged(3, 17, || {
                std::thread::sleep(std::time::Duration::from_millis(2))
            });
        });
        let rep = r.run();
        let events: Vec<_> = rep.trace.all_events().collect();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].class, 3);
        assert_eq!(events[0].tag, 17);
        assert!(events[0].end_ns > events[0].start_ns);
        // The aggregated counters saw the same event, and the worker lanes
        // carry stable labels.
        assert_eq!(rep.counters.0[3].count, 1);
        assert_eq!(rep.trace_dropped, 0);
        assert!(rep.run_start_unix_ns > 0);
        let labels: Vec<&str> = rep.trace.lanes().map(|(l, _)| l).collect();
        assert_eq!(labels, vec!["w0", "w1"]);
    }

    #[test]
    fn counters_level_counts_without_spans() {
        let r = Runtime::new(RuntimeConfig {
            localities: 1,
            workers_per_locality: 1,
            priority_scheduling: false,
            obs: ObsLevel::Counters,
        });
        r.seed(0, |ctx| {
            ctx.traced(5, || {});
            ctx.traced(5, || {});
        });
        let rep = r.run();
        assert!(rep.trace.is_empty());
        assert_eq!(rep.counters.0[5].count, 2);
    }

    #[test]
    fn lco_trigger_instants_recorded_at_full() {
        let r = Runtime::new(RuntimeConfig {
            localities: 1,
            workers_per_locality: 1,
            priority_scheduling: false,
            obs: ObsLevel::Full,
        });
        let fut = r.lco_new(0, LcoSpec::future(1));
        r.seed(0, move |ctx| ctx.lco_set(fut, &[1.0]));
        let rep = r.run();
        let triggers = rep
            .trace
            .all_events()
            .filter(|e| e.class == CLASS_LCO_TRIGGER)
            .count();
        assert_eq!(triggers, 1);
    }

    #[test]
    fn reset_clears_state_between_runs() {
        let r = rt(2, 1);
        let a = r.lco_new(1, LcoSpec::future(1));
        r.seed(0, move |ctx| ctx.lco_set(a, &[1.0]));
        r.run();
        assert_eq!(r.lco_get(a), Some(vec![1.0]));
        r.reset();
        // Fresh allocation reuses slot 0 on the cleared slab.
        let b = r.lco_new(1, LcoSpec::future(1));
        assert_eq!(b.index, 0);
        r.seed(0, move |ctx| ctx.lco_set(b, &[2.0]));
        r.run();
        assert_eq!(r.lco_get(b), Some(vec![2.0]));
        // Built-in actions survive the reset (lco_set above crossed the
        // network via ACTION_LCO_SET).
    }

    #[test]
    fn run_aborts_cleanly_when_transport_loses_a_peer() {
        use crate::transport::TransportStats;
        // A transport that never reaches global quiescence (a remote peer
        // holds work) and declares that peer dead shortly into the run:
        // `run()` must return with `lost_peer` set instead of hanging.
        struct DyingTransport {
            start: Instant,
        }
        impl Transport for DyingTransport {
            fn num_ranks(&self) -> u32 {
                2
            }
            fn rank(&self) -> u32 {
                0
            }
            fn is_local(&self, locality: u32) -> bool {
                locality == 0
            }
            fn attach(&self, _hooks: TransportHooks) {}
            fn begin_run(&self) {}
            fn send(&self, _parcel: Parcel) {}
            fn poll_quiescence(&self, _locally_idle: bool) -> bool {
                false
            }
            fn stats(&self) -> TransportStats {
                TransportStats::default()
            }
            fn failed_peer(&self) -> Option<u32> {
                (self.start.elapsed().as_millis() >= 20).then_some(1)
            }
        }
        let r = Runtime::with_transport(
            RuntimeConfig {
                localities: 2,
                workers_per_locality: 1,
                ..Default::default()
            },
            Arc::new(DyingTransport {
                start: Instant::now(),
            }),
        );
        let ran = Arc::new(AtomicU64::new(0));
        let ran2 = ran.clone();
        r.seed(0, move |_| {
            ran2.fetch_add(1, Ordering::SeqCst);
        });
        let rep = r.run();
        let fail = rep.lost_peer.expect("peer loss surfaced");
        assert_eq!(fail.rank, 1);
        assert_eq!(
            fail.reason,
            crate::ledger::ConvictionReason::HeartbeatTimeout
        );
        assert!(!rep.completed());
        assert!(!rep.fenced, "transport without fencing support aborts");
        assert_eq!(ran.load(Ordering::SeqCst), 1, "local work still drained");
        // The abort leaves the runtime reusable.
        r.reset();
    }

    #[test]
    fn fencing_transport_runs_to_survivor_quiescence() {
        use crate::ledger::{ConvictionReason, PeerFailure};
        use crate::transport::TransportStats;
        // A transport that convicts peer 1 early but supports fencing:
        // the run must keep going and end through poll_quiescence (which
        // only reports done *after* the fence), not through the abort
        // path — so seeds queued behind the conviction still execute.
        struct FencingTransport {
            start: Instant,
            fenced: AtomicBool,
        }
        impl Transport for FencingTransport {
            fn num_ranks(&self) -> u32 {
                2
            }
            fn rank(&self) -> u32 {
                0
            }
            fn is_local(&self, locality: u32) -> bool {
                locality == 0
            }
            fn attach(&self, _hooks: TransportHooks) {}
            fn begin_run(&self) {}
            fn send(&self, _parcel: Parcel) {}
            fn poll_quiescence(&self, locally_idle: bool) -> bool {
                locally_idle && self.fenced.load(Ordering::SeqCst)
            }
            fn stats(&self) -> TransportStats {
                TransportStats::default()
            }
            fn failed_peer(&self) -> Option<u32> {
                (self.start.elapsed().as_millis() >= 10).then_some(1)
            }
            fn failed_peer_info(&self) -> Option<PeerFailure> {
                self.failed_peer().map(|rank| PeerFailure {
                    rank,
                    epoch: 3,
                    reason: ConvictionReason::DirtyClose,
                })
            }
            fn fence_peer(&self, dead: u32) -> bool {
                assert_eq!(dead, 1);
                self.fenced.store(true, Ordering::SeqCst);
                true
            }
        }
        let r = Runtime::with_transport(
            RuntimeConfig {
                localities: 2,
                workers_per_locality: 1,
                ..Default::default()
            },
            Arc::new(FencingTransport {
                start: Instant::now(),
                fenced: AtomicBool::new(false),
            }),
        );
        let ran = Arc::new(AtomicU64::new(0));
        let ran2 = ran.clone();
        r.seed(0, move |_| {
            ran2.fetch_add(1, Ordering::SeqCst);
        });
        let rep = r.run();
        let fail = rep.lost_peer.expect("peer loss surfaced");
        assert_eq!((fail.rank, fail.epoch), (1, 3));
        assert_eq!(fail.reason, ConvictionReason::DirtyClose);
        assert!(rep.fenced, "fence accepted: run ended via quiescence");
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        // A fenced end does not force-drain queues, so a recovery run can
        // be seeded immediately.
        let ran3 = ran.clone();
        r.seed(0, move |_| {
            ran3.fetch_add(1, Ordering::SeqCst);
        });
        let rep2 = r.run();
        // The standing conviction may or may not be re-observed before
        // quiescence wins the poll race; what matters is the run drains.
        if let Some(fail2) = rep2.lost_peer {
            assert_eq!(fail2.rank, 1);
            assert!(rep2.fenced);
        }
        assert_eq!(ran.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn lco_rearm_only_touches_untriggered_cells() {
        let r = rt(1, 1);
        let a = r.lco_new(0, LcoSpec::reduce_sum(1, 3));
        r.seed(0, move |ctx| ctx.lco_set(a, &[1.0]));
        r.run();
        assert!(!r.lco_triggered(a));
        assert_eq!(r.lco_remaining(a), 2);
        // Recovery decides only 1 more input will ever arrive.
        assert!(r.lco_rearm(a, 1));
        r.seed(0, move |ctx| ctx.lco_set(a, &[5.0]));
        r.run();
        assert!(r.lco_triggered(a));
        assert_eq!(r.lco_get(a), Some(vec![6.0]));
        // Triggered cells refuse re-arming.
        assert!(!r.lco_rearm(a, 1));
    }

    #[test]
    fn normal_work_drains_under_sustained_high_load() {
        // Starvation regression for the indexed multi-level run queue: a
        // self-replenishing chain of High tasks keeps the urgent class
        // permanently occupied on a single worker.  Without the escape
        // hatch, strict priority order would run the entire chain before
        // any Normal task; the hatch must interleave Normal work while the
        // chain is still alive.
        const CHAIN: u64 = 4000;
        const NORMALS: u64 = 30;
        let r = Runtime::new(RuntimeConfig {
            localities: 1,
            workers_per_locality: 1,
            priority_scheduling: true,
            obs: ObsLevel::Off,
        });
        let high_done = Arc::new(AtomicU64::new(0));
        let normal_seen_at = Arc::new(Mutex::new(Vec::new()));
        for _ in 0..NORMALS {
            let hd = high_done.clone();
            let seen = normal_seen_at.clone();
            r.seed(0, move |_| {
                seen.lock().push(hd.load(Ordering::SeqCst));
            });
        }
        fn link(ctx: &TaskCtx, remaining: u64, done: Arc<AtomicU64>) {
            done.fetch_add(1, Ordering::SeqCst);
            if remaining > 0 {
                ctx.spawn_with_priority(move |c| link(c, remaining - 1, done), Priority::High);
            }
        }
        {
            let hd = high_done.clone();
            r.seed(0, move |ctx| link(ctx, CHAIN - 1, hd));
        }
        r.run();
        assert_eq!(high_done.load(Ordering::SeqCst), CHAIN);
        let seen = normal_seen_at.lock();
        assert_eq!(seen.len() as u64, NORMALS);
        assert!(
            seen.iter().all(|&at| at < CHAIN),
            "every Normal task must run while High work is still flowing; \
             saw completions at {:?} of {} chain tasks",
            *seen,
            CHAIN
        );
    }

    #[test]
    fn graded_classes_dequeue_most_urgent_first() {
        // One worker, seeds parked behind a blocked gate: after release,
        // tasks must drain class 0 → class 7 regardless of enqueue order.
        let r = Runtime::new(RuntimeConfig {
            localities: 1,
            workers_per_locality: 1,
            priority_scheduling: true,
            obs: ObsLevel::Off,
        });
        let order = Arc::new(Mutex::new(Vec::new()));
        let act = {
            let o = order.clone();
            r.register_action(Arc::new(move |_ctx, target, _payload: &[u8]| {
                o.lock().push(target.index as u8);
            }))
        };
        let o = order.clone();
        r.seed(0, move |ctx| {
            let _ = &o;
            for level in (0..Priority::CLASSES).rev() {
                ctx.send(Parcel::graded(
                    act,
                    GlobalAddress::new(0, level as u32),
                    vec![],
                    Priority::class(level),
                ));
            }
        });
        r.run();
        let got = order.lock().clone();
        assert_eq!(
            got,
            (0..Priority::CLASSES).collect::<Vec<u8>>(),
            "graded parcels drain most-urgent class first"
        );
    }

    #[test]
    fn two_runs_on_one_runtime() {
        // The iterative use case: setup once, evaluate repeatedly.
        let r = rt(1, 2);
        let c = Arc::new(AtomicU64::new(0));
        for _ in 0..2 {
            let c2 = c.clone();
            r.seed(0, move |_| {
                c2.fetch_add(1, Ordering::Relaxed);
            });
            let rep = r.run();
            assert_eq!(rep.tasks, 1);
        }
        assert_eq!(c.load(Ordering::SeqCst), 2);
    }
}
