//! Deterministic, seedable fault plans.
//!
//! A [`FaultPlan`] describes which faults a run injects into the parcel
//! plane: per-frame drop / duplicate / corrupt / delay / reorder
//! probabilities, plus an optional locality kill or stall at a chosen
//! time.  The plan lives here (next to [`CoalesceConfig`]) because the
//! real transport (`dashmm-net`) and the simulator's network model
//! (`dashmm-sim`) consume the *same* plan: every per-frame decision is a
//! pure hash of `(seed, fault kind, src, dst, seq)`, no RNG state, so the
//! two layers agree on what happens to a given frame and their retransmit
//! counts can be compared (the sim/runtime parity check).
//!
//! Plans are written as compact spec strings so they survive the
//! environment crossing into re-executed rank processes:
//!
//! ```text
//! seed=7,drop=0.01,dup=0.005,corrupt=0.002,delay=0.01:500,reorder=0.01,kill=1@200,stall=1@100+250
//! ```
//!
//! `kill=R@MS` kills rank `R` dead `MS` milliseconds into the run (no
//! goodbye, no flush — a crash).  `stall=R@MS+DUR` freezes rank `R`'s
//! progress thread for `DUR` ms starting at `MS` (a GC-pause-like brownout
//! the run must ride out).
//!
//! [`CoalesceConfig`]: crate::transport::CoalesceConfig

use std::fmt;

/// Environment variable carrying the fault-plan spec into rank processes.
pub const ENV_FAULTS: &str = "DASHMM_FAULTS";

/// Kill one rank at a chosen time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KillSpec {
    /// Victim rank.
    pub rank: u32,
    /// Milliseconds after transport start.
    pub at_ms: u64,
}

/// Stall one rank's progress thread for a window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StallSpec {
    /// Victim rank.
    pub rank: u32,
    /// Milliseconds after transport start.
    pub at_ms: u64,
    /// Stall duration in milliseconds.
    pub dur_ms: u64,
}

/// What the plan decided for one outbound frame.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrameFate {
    /// The frame never reaches the peer (a retransmission must recover it).
    pub drop: bool,
    /// The frame arrives twice (duplicate suppression must absorb it).
    pub dup: bool,
    /// The frame body arrives bit-flipped (the checksum must catch it; the
    /// header is left intact so the stream can resynchronise).
    pub corrupt: bool,
    /// Extra in-flight delay in microseconds (0 = none).
    pub delay_us: u64,
    /// The frame is held back behind the next frame to the same peer.
    pub reorder: bool,
}

impl FrameFate {
    /// Whether any fault applies.
    pub fn any(&self) -> bool {
        self.drop || self.dup || self.corrupt || self.delay_us > 0 || self.reorder
    }

    /// Whether the receiver never gets a usable copy of this transmission
    /// (dropped outright, or corrupted so the checksum rejects it).
    pub fn lost(&self) -> bool {
        self.drop || self.corrupt
    }
}

/// A deterministic fault-injection plan (see module docs).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-frame hash decisions.
    pub seed: u64,
    /// P(frame dropped in flight).
    pub drop: f64,
    /// P(frame duplicated).
    pub dup: f64,
    /// P(frame body corrupted).
    pub corrupt: f64,
    /// P(frame delayed by [`FaultPlan::delay_us`]).
    pub delay: f64,
    /// Injected delay in microseconds when the delay fault fires.
    pub delay_us: u64,
    /// P(frame held back behind its successor — adjacent reorder).
    pub reorder: f64,
    /// Kill schedule.
    pub kill: Option<KillSpec>,
    /// Stall schedule.
    pub stall: Option<StallSpec>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 1,
            drop: 0.0,
            dup: 0.0,
            corrupt: 0.0,
            delay: 0.0,
            delay_us: 500,
            reorder: 0.0,
            kill: None,
            stall: None,
        }
    }
}

/// splitmix64 finalizer: the stateless hash behind every decision.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Fault-kind discriminants folded into the hash so the same frame rolls
/// independently per fault.
#[repr(u64)]
enum Kind {
    Drop = 1,
    Dup = 2,
    Corrupt = 3,
    Delay = 4,
    Reorder = 5,
}

impl FaultPlan {
    /// Whether the plan injects anything at all.  A `None`/inactive plan
    /// must cost nothing on the hot path; callers gate on this.
    pub fn active(&self) -> bool {
        self.drop > 0.0
            || self.dup > 0.0
            || self.corrupt > 0.0
            || self.delay > 0.0
            || self.reorder > 0.0
            || self.kill.is_some()
            || self.stall.is_some()
    }

    fn roll(&self, kind: u64, src: u32, dst: u32, seq: u64, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let h = mix(self.seed
            ^ kind.wrapping_mul(0xa076_1d64_78bd_642f)
            ^ ((src as u64) << 32 | dst as u64).wrapping_mul(0xe703_7ed1_a0b4_28db)
            ^ seq.wrapping_mul(0x8ebc_6af0_9c88_c6e3));
        // Compare against p scaled into the u64 range.
        (h as f64) < p * (u64::MAX as f64)
    }

    /// The (deterministic) fate of transmission `seq` from `src` to `dst`.
    /// `seq` is the reliability-layer sequence number for parcel frames —
    /// the *same* identifier the simulator rolls with, which is what makes
    /// the parity check meaningful.  Retransmissions pass `attempt > 0` so
    /// a frame is not doomed forever.
    pub fn fate(&self, src: u32, dst: u32, seq: u64, attempt: u32) -> FrameFate {
        let seq = seq ^ ((attempt as u64) << 48);
        FrameFate {
            drop: self.roll(Kind::Drop as u64, src, dst, seq, self.drop),
            dup: self.roll(Kind::Dup as u64, src, dst, seq, self.dup),
            corrupt: self.roll(Kind::Corrupt as u64, src, dst, seq, self.corrupt),
            delay_us: if self.roll(Kind::Delay as u64, src, dst, seq, self.delay) {
                self.delay_us
            } else {
                0
            },
            reorder: self.roll(Kind::Reorder as u64, src, dst, seq, self.reorder),
        }
    }

    /// Parse a spec string (see module docs).  Unknown keys and malformed
    /// values are errors — a chaos run must not silently drop its faults.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',').filter(|s| !s.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{part}` is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("`{key}` expects a probability, got `{v}`"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("`{key}` probability {p} outside [0,1]"));
                }
                Ok(p)
            };
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("seed `{value}` is not an integer"))?
                }
                "drop" => plan.drop = prob(value)?,
                "dup" => plan.dup = prob(value)?,
                "corrupt" => plan.corrupt = prob(value)?,
                "reorder" => plan.reorder = prob(value)?,
                "delay" => match value.split_once(':') {
                    Some((p, us)) => {
                        plan.delay = prob(p)?;
                        plan.delay_us = us
                            .parse()
                            .map_err(|_| format!("delay microseconds `{us}` unparsable"))?;
                    }
                    None => plan.delay = prob(value)?,
                },
                "kill" => {
                    let (rank, at) = value
                        .split_once('@')
                        .ok_or_else(|| format!("kill `{value}` is not RANK@MS"))?;
                    plan.kill = Some(KillSpec {
                        rank: rank
                            .parse()
                            .map_err(|_| "kill rank unparsable".to_string())?,
                        at_ms: at.parse().map_err(|_| "kill time unparsable".to_string())?,
                    });
                }
                "stall" => {
                    let (rank, rest) = value
                        .split_once('@')
                        .ok_or_else(|| format!("stall `{value}` is not RANK@MS+DUR"))?;
                    let (at, dur) = rest
                        .split_once('+')
                        .ok_or_else(|| format!("stall `{value}` is not RANK@MS+DUR"))?;
                    plan.stall = Some(StallSpec {
                        rank: rank
                            .parse()
                            .map_err(|_| "stall rank unparsable".to_string())?,
                        at_ms: at
                            .parse()
                            .map_err(|_| "stall time unparsable".to_string())?,
                        dur_ms: dur
                            .parse()
                            .map_err(|_| "stall duration unparsable".to_string())?,
                    });
                }
                other => return Err(format!("unknown fault key `{other}`")),
            }
        }
        Ok(plan)
    }

    /// The plan from [`ENV_FAULTS`], if set.  A malformed spec aborts the
    /// process — misconfigured chaos must not masquerade as a clean run.
    pub fn from_env() -> Option<FaultPlan> {
        let spec = std::env::var(ENV_FAULTS).ok()?;
        match FaultPlan::parse(&spec) {
            Ok(plan) => Some(plan),
            Err(e) => {
                eprintln!("fatal: {ENV_FAULTS}={spec}: {e}");
                std::process::exit(2);
            }
        }
    }
}

impl fmt::Display for FaultPlan {
    /// The canonical spec string (round-trips through [`FaultPlan::parse`]).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        if self.drop > 0.0 {
            write!(f, ",drop={}", self.drop)?;
        }
        if self.dup > 0.0 {
            write!(f, ",dup={}", self.dup)?;
        }
        if self.corrupt > 0.0 {
            write!(f, ",corrupt={}", self.corrupt)?;
        }
        if self.delay > 0.0 {
            write!(f, ",delay={}:{}", self.delay, self.delay_us)?;
        }
        if self.reorder > 0.0 {
            write!(f, ",reorder={}", self.reorder)?;
        }
        if let Some(k) = self.kill {
            write!(f, ",kill={}@{}", k.rank, k.at_ms)?;
        }
        if let Some(s) = self.stall {
            write!(f, ",stall={}@{}+{}", s.rank, s.at_ms, s.dur_ms)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec_round_trips() {
        let spec = "seed=7,drop=0.01,dup=0.005,corrupt=0.002,delay=0.01:500,reorder=0.01,kill=1@200,stall=0@100+250";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.drop, 0.01);
        assert_eq!(plan.delay_us, 500);
        assert_eq!(
            plan.kill,
            Some(KillSpec {
                rank: 1,
                at_ms: 200
            })
        );
        assert_eq!(
            plan.stall,
            Some(StallSpec {
                rank: 0,
                at_ms: 100,
                dur_ms: 250
            })
        );
        assert!(plan.active());
        let reparsed = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(reparsed, plan);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        assert!(FaultPlan::parse("drop").is_err());
        assert!(FaultPlan::parse("drop=2.0").is_err());
        assert!(FaultPlan::parse("drop=-0.1").is_err());
        assert!(FaultPlan::parse("frobnicate=1").is_err());
        assert!(FaultPlan::parse("kill=1").is_err());
        assert!(FaultPlan::parse("stall=1@2").is_err());
    }

    #[test]
    fn empty_spec_is_inactive() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(!plan.active());
        assert!(!plan.fate(0, 1, 42, 0).any());
    }

    #[test]
    fn decisions_are_deterministic_and_frame_keyed() {
        let plan = FaultPlan {
            drop: 0.5,
            ..FaultPlan::parse("seed=3").unwrap()
        };
        // Same inputs, same fate.
        assert_eq!(plan.fate(0, 1, 10, 0), plan.fate(0, 1, 10, 0));
        // Retransmission attempts roll fresh.
        let dooms: Vec<bool> = (0..8).map(|a| plan.fate(0, 1, 10, a).drop).collect();
        assert!(
            dooms.iter().any(|d| !d),
            "some attempt must survive: {dooms:?}"
        );
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let plan = FaultPlan {
            drop: 0.1,
            ..FaultPlan::default()
        };
        let n = 20_000;
        let dropped = (0..n).filter(|&s| plan.fate(0, 1, s, 0).drop).count();
        let rate = dropped as f64 / n as f64;
        assert!(
            (rate - 0.1).abs() < 0.01,
            "empirical drop rate {rate} far from 0.1"
        );
    }

    #[test]
    fn independent_streams_per_link() {
        let plan = FaultPlan {
            drop: 0.3,
            ..FaultPlan::default()
        };
        let a: Vec<bool> = (0..64).map(|s| plan.fate(0, 1, s, 0).drop).collect();
        let b: Vec<bool> = (0..64).map(|s| plan.fate(1, 0, s, 0).drop).collect();
        assert_ne!(a, b, "links must roll independent streams");
    }
}
