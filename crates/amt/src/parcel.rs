//! Parcels: the active messages of the runtime.

use crate::addr::GlobalAddress;

/// Identifier of an action registered with the runtime before execution.
/// Parcels carry action ids rather than function pointers so that a parcel
/// is, in principle, serialisable — the discipline that keeps the runtime's
/// shared-memory and distributed semantics identical (paper §III).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ActionId(pub u32);

/// Graded task priority.  The paper's scheduling extension (§V-C/§VI) is a
/// binary high/normal bit; the priority-lattice pass generalises it to
/// [`Priority::CLASSES`] ordered classes where level 0 is the most urgent
/// and level `CLASSES - 1` the least.  Smaller level ⇒ drained first.
///
/// [`Priority::High`] (level 0) and [`Priority::Normal`] (the middle
/// class) are retained as named constants: binary-mode callers and the
/// paper-faithful ablation baseline use exactly those two, while the
/// lattice emits the full range via [`Priority::class`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(u8);

impl Priority {
    /// Number of priority classes carried on the wire and indexed by the
    /// scheduler's run queues.  Must match the DAG lattice's
    /// `PRIORITY_CLASSES` (asserted where the two crates meet).
    pub const CLASSES: u8 = 8;

    /// Most urgent class — what the paper's binary extension calls "high".
    #[allow(non_upper_case_globals)]
    pub const High: Priority = Priority(0);

    /// Default class for unranked work, the middle of the lattice so a
    /// computed lattice can both promote and demote relative to it.
    #[allow(non_upper_case_globals)]
    pub const Normal: Priority = Priority(Self::CLASSES / 2);

    /// Graded priority at `level`, clamped to the valid range.
    #[inline]
    pub fn class(level: u8) -> Priority {
        Priority(level.min(Self::CLASSES - 1))
    }

    /// The class level, `0..CLASSES` (0 = most urgent).
    #[inline]
    pub fn level(self) -> u8 {
        self.0
    }

    /// More urgent than default work?
    #[inline]
    pub fn is_urgent(self) -> bool {
        self.0 < Self::Normal.0
    }
}

impl Default for Priority {
    fn default() -> Self {
        Priority::Normal
    }
}

/// An active message: an action to perform at a global address, with
/// argument data.
#[derive(Clone, Debug)]
pub struct Parcel {
    /// Registered action to invoke.
    pub action: ActionId,
    /// Address the action operates on; its locality is where the parcel is
    /// delivered and the lightweight thread spawned.
    pub target: GlobalAddress,
    /// Argument bytes.
    pub payload: Vec<u8>,
    /// Scheduling priority at the destination.
    pub priority: Priority,
}

impl Parcel {
    /// Construct a normal-priority parcel.
    pub fn new(action: ActionId, target: GlobalAddress, payload: Vec<u8>) -> Self {
        Parcel {
            action,
            target,
            payload,
            priority: Priority::Normal,
        }
    }

    /// Construct a high-priority parcel.
    pub fn high(action: ActionId, target: GlobalAddress, payload: Vec<u8>) -> Self {
        Parcel {
            action,
            target,
            payload,
            priority: Priority::High,
        }
    }

    /// Construct a parcel at an explicit graded priority.
    pub fn graded(
        action: ActionId,
        target: GlobalAddress,
        payload: Vec<u8>,
        priority: Priority,
    ) -> Self {
        Parcel {
            action,
            target,
            payload,
            priority,
        }
    }

    /// Total bytes on the wire (header + payload), the quantity the
    /// network statistics count.
    pub fn wire_bytes(&self) -> u64 {
        16 + self.payload.len() as u64
    }
}

/// Append `f64` values to a byte buffer (little endian).
pub fn encode_f64s(values: &[f64], out: &mut Vec<u8>) {
    out.reserve(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Decode a byte slice as little-endian `f64`s.  Panics when the length is
/// not a multiple of 8 — payload framing is the sender's responsibility.
pub fn decode_f64s(bytes: &[u8]) -> Vec<f64> {
    assert_eq!(bytes.len() % 8, 0, "payload is not a whole number of f64s");
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        let vals = [0.0, -1.5, std::f64::consts::PI, f64::MAX, f64::MIN_POSITIVE];
        let mut buf = Vec::new();
        encode_f64s(&vals, &mut buf);
        assert_eq!(buf.len(), 40);
        assert_eq!(decode_f64s(&buf), vals);
    }

    #[test]
    #[should_panic]
    fn ragged_payload_rejected() {
        let _ = decode_f64s(&[1, 2, 3]);
    }

    #[test]
    fn wire_bytes_include_header() {
        let p = Parcel::new(ActionId(1), GlobalAddress::new(0, 0), vec![0; 24]);
        assert_eq!(p.wire_bytes(), 40);
    }

    #[test]
    fn priorities() {
        let p = Parcel::new(ActionId(0), GlobalAddress::new(0, 0), vec![]);
        assert_eq!(p.priority, Priority::Normal);
        let h = Parcel::high(ActionId(0), GlobalAddress::new(0, 0), vec![]);
        assert_eq!(h.priority, Priority::High);
        let g = Parcel::graded(
            ActionId(0),
            GlobalAddress::new(0, 0),
            vec![],
            Priority::class(2),
        );
        assert_eq!(g.priority.level(), 2);
    }

    #[test]
    fn priority_grading() {
        assert_eq!(Priority::High.level(), 0);
        assert_eq!(Priority::Normal.level(), Priority::CLASSES / 2);
        assert!(Priority::High < Priority::Normal);
        assert!(Priority::High.is_urgent());
        assert!(!Priority::Normal.is_urgent());
        // Out-of-range levels clamp to the least-urgent class.
        assert_eq!(Priority::class(200).level(), Priority::CLASSES - 1);
        assert_eq!(Priority::default(), Priority::Normal);
    }
}
