//! Local control objects.
//!
//! An LCO co-locates data and control (paper §III): it has input slots, a
//! reduction that folds each arriving input into the stored data, a
//! predicate that declares the LCO *triggered* (here: all expected inputs
//! arrived), and continuations — parcels or local closures — that run as
//! new lightweight threads once triggered.  DASHMM's implicit DAG is a
//! network of user-defined LCOs whose stored data is an expansion and whose
//! single continuation processes the node's out-edge list (paper §IV,
//! Figure 2).

use parking_lot::Mutex;

use crate::parcel::Parcel;
use crate::runtime::TaskCtx;
use crate::trace::CLASS_NONE;

/// How an arriving input is folded into the stored data.
pub enum LcoOp {
    /// Element-wise add (the reduction used by expansion LCOs).
    Add,
    /// Overwrite (futures).
    Overwrite,
    /// Ignore the input values; only count arrivals (and-gates).
    Gate,
    /// User-defined reduction.
    Custom(ReduceFn),
}

/// A user-defined reduction: folds one input into the stored data.
pub type ReduceFn = Box<dyn Fn(&mut [f64], &[f64]) + Send + Sync>;

/// A local closure run on trigger with a view of the LCO data.
pub type TriggerFn = Box<dyn FnOnce(&TaskCtx, &[f64]) + Send>;

/// Specification of an LCO at allocation time.
pub struct LcoSpec {
    /// Length of the stored `f64` data.
    pub size: usize,
    /// Number of inputs that must arrive before the LCO triggers.
    pub inputs: u32,
    /// Reduction applied per input.
    pub op: LcoOp,
    /// Optional local continuation closure (DASHMM's out-edge processor).
    pub on_trigger: Option<TriggerFn>,
    /// Trace class recorded for input reductions into this LCO
    /// ([`CLASS_NONE`] disables tracing for this LCO).
    pub trace_class: u8,
}

impl LcoSpec {
    /// A future: one input, stores it verbatim.
    pub fn future(size: usize) -> Self {
        LcoSpec {
            size,
            inputs: 1,
            op: LcoOp::Overwrite,
            on_trigger: None,
            trace_class: CLASS_NONE,
        }
    }

    /// An and-gate over `n` signals.
    pub fn and_gate(n: u32) -> Self {
        LcoSpec {
            size: 0,
            inputs: n,
            op: LcoOp::Gate,
            on_trigger: None,
            trace_class: CLASS_NONE,
        }
    }

    /// A summing reduction of `n` vectors of length `size`.
    pub fn reduce_sum(size: usize, n: u32) -> Self {
        LcoSpec {
            size,
            inputs: n,
            op: LcoOp::Add,
            on_trigger: None,
            trace_class: CLASS_NONE,
        }
    }

    /// Attach a trigger closure.
    pub fn with_trigger(mut self, f: TriggerFn) -> Self {
        self.on_trigger = Some(f);
        self
    }

    /// Record reductions into this LCO under a trace class.
    pub fn with_trace_class(mut self, class: u8) -> Self {
        self.trace_class = class;
        self
    }
}

pub(crate) struct LcoCell {
    pub(crate) state: Mutex<LcoState>,
}

pub(crate) struct LcoState {
    pub(crate) data: Vec<f64>,
    pub(crate) remaining: u32,
    pub(crate) triggered: bool,
    pub(crate) op: LcoOp,
    pub(crate) on_trigger: Option<TriggerFn>,
    /// Continuation parcels registered before the trigger; drained when it
    /// fires.  `include_data == true` appends the LCO data to the payload.
    pub(crate) waiting: Vec<(Parcel, bool)>,
    pub(crate) trace_class: u8,
}

impl LcoCell {
    pub(crate) fn new(spec: LcoSpec) -> Self {
        let triggered = spec.inputs == 0;
        LcoCell {
            state: Mutex::new(LcoState {
                data: vec![0.0; spec.size],
                remaining: spec.inputs,
                triggered,
                op: spec.op,
                on_trigger: spec.on_trigger,
                waiting: Vec::new(),
                trace_class: spec.trace_class,
            }),
        }
    }
}

impl LcoState {
    /// Fold one input; returns whether this input triggered the LCO.
    pub(crate) fn reduce(&mut self, input: &[f64]) -> bool {
        assert!(
            self.remaining > 0,
            "LCO received an input after triggering (inputs over-subscribed)"
        );
        match &self.op {
            LcoOp::Add => {
                assert_eq!(input.len(), self.data.len(), "Add input length mismatch");
                for (d, v) in self.data.iter_mut().zip(input) {
                    *d += v;
                }
            }
            LcoOp::Overwrite => {
                assert_eq!(
                    input.len(),
                    self.data.len(),
                    "Overwrite input length mismatch"
                );
                self.data.copy_from_slice(input);
            }
            LcoOp::Gate => {}
            LcoOp::Custom(f) => f(&mut self.data, input),
        }
        self.remaining -= 1;
        if self.remaining == 0 {
            self.triggered = true;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_reduction_triggers_on_last_input() {
        let cell = LcoCell::new(LcoSpec::reduce_sum(3, 2));
        let mut st = cell.state.lock();
        assert!(!st.reduce(&[1.0, 2.0, 3.0]));
        assert!(!st.triggered);
        assert!(st.reduce(&[0.5, 0.5, 0.5]));
        assert!(st.triggered);
        assert_eq!(st.data, vec![1.5, 2.5, 3.5]);
    }

    #[test]
    fn future_overwrites() {
        let cell = LcoCell::new(LcoSpec::future(2));
        let mut st = cell.state.lock();
        assert!(st.reduce(&[9.0, 8.0]));
        assert_eq!(st.data, vec![9.0, 8.0]);
    }

    #[test]
    fn gate_ignores_values() {
        let cell = LcoCell::new(LcoSpec::and_gate(3));
        let mut st = cell.state.lock();
        assert!(!st.reduce(&[]));
        assert!(!st.reduce(&[]));
        assert!(st.reduce(&[]));
    }

    #[test]
    fn zero_input_lco_starts_triggered() {
        let cell = LcoCell::new(LcoSpec {
            inputs: 0,
            ..LcoSpec::future(1)
        });
        assert!(cell.state.lock().triggered);
    }

    #[test]
    #[should_panic]
    fn oversubscription_panics() {
        let cell = LcoCell::new(LcoSpec::and_gate(1));
        let mut st = cell.state.lock();
        let _ = st.reduce(&[]);
        let _ = st.reduce(&[]);
    }

    #[test]
    fn custom_reduction() {
        let spec = LcoSpec {
            size: 1,
            inputs: 2,
            op: LcoOp::Custom(Box::new(|d, i| d[0] = d[0].max(i[0]))),
            on_trigger: None,
            trace_class: CLASS_NONE,
        };
        let cell = LcoCell::new(spec);
        let mut st = cell.state.lock();
        let _ = st.reduce(&[3.0]);
        let _ = st.reduce(&[2.0]);
        assert_eq!(st.data, vec![3.0]);
    }
}
