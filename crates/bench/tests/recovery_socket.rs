//! End-to-end locality-failure recovery over real sockets: three ranks
//! evaluate the cube/Laplace workload over a loopback TCP mesh, rank 2 is
//! severed mid-run (the process-death model), and the survivors must fence
//! it, re-own its DAG slice, replay the orphaned work, and produce the
//! *complete* answer — within 1e-12 of the fault-free single-process
//! reference.  Exactly-once delivery is enforced by the runtime itself:
//! an over-subscribed LCO panics the rank thread, which fails the join.

use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dashmm_amt::{CoalesceConfig, Transport};
use dashmm_core::{DashmmBuilder, EvalOutput, Method};
use dashmm_kernels::Laplace;
use dashmm_net::{RetransmitConfig, SocketTransport};
use dashmm_tree::uniform_cube;

const RANKS: u32 = 3;
const DEAD: u32 = 2;
const N: usize = 2_500;
const THRESHOLD: usize = 20;
const WORKERS: usize = 2;

fn socket_pair() -> (TcpStream, TcpStream) {
    let l = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = l.local_addr().unwrap();
    let a = TcpStream::connect(addr).unwrap();
    let (b, _) = l.accept().unwrap();
    (a, b)
}

/// Fully-connected loopback mesh of `RANKS` transports, recovery armed.
fn mesh() -> Vec<Arc<SocketTransport>> {
    let mut peers: Vec<Vec<Option<TcpStream>>> = (0..RANKS)
        .map(|_| (0..RANKS).map(|_| None).collect())
        .collect();
    for lo in 0..RANKS {
        for hi in lo + 1..RANKS {
            let (a, b) = socket_pair();
            peers[lo as usize][hi as usize] = Some(a);
            peers[hi as usize][lo as usize] = Some(b);
        }
    }
    peers
        .into_iter()
        .enumerate()
        .map(|(rank, p)| {
            let t = Arc::new(SocketTransport::with_options(
                rank as u32,
                RANKS,
                p,
                CoalesceConfig::default(),
                Duration::from_secs(60),
                None,
                RetransmitConfig::default(),
                Duration::from_secs(5),
            ));
            t.set_recover(true);
            t
        })
        .collect()
}

fn rank_eval(
    transport: Arc<SocketTransport>,
    sources: &[dashmm_tree::Point3],
    charges: &[f64],
    targets: &[dashmm_tree::Point3],
) -> EvalOutput {
    let out = DashmmBuilder::new(Laplace)
        .method(Method::AdvancedFmm)
        .threshold(THRESHOLD)
        .machine(RANKS as usize, WORKERS)
        .transport(Arc::clone(&transport) as Arc<dyn Transport>)
        .recover(true)
        .build(sources, charges, targets)
        .evaluate();
    transport.shutdown();
    out
}

#[test]
fn severed_rank_is_recovered_by_survivors() {
    // Watchdog: a wedged recovery must fail loudly, never hang the suite.
    std::thread::spawn(|| {
        std::thread::sleep(Duration::from_secs(180));
        eprintln!("recovery_socket: 180s budget exceeded, aborting");
        std::process::abort();
    });
    let sources = uniform_cube(N, 11);
    let targets = uniform_cube(N, 12);
    let charges = vec![1.0; N];

    let transports = mesh();
    let victim = Arc::clone(&transports[DEAD as usize]);
    // Process-death model: once the victim's run is demonstrably underway
    // (parcel frames on the wire), sever it from the mesh without a
    // goodbye — peers observe the hangup exactly as a crash.
    let killer = std::thread::spawn({
        let victim = Arc::clone(&victim);
        move || {
            let deadline = Instant::now() + Duration::from_secs(30);
            loop {
                let frames: u64 = victim.metrics().per_dest.iter().map(|d| d.frames).sum();
                if frames > 5 {
                    break;
                }
                assert!(Instant::now() < deadline, "victim never started sending");
                std::thread::sleep(Duration::from_millis(1));
            }
            victim.sever();
        }
    });

    let ranks: Vec<_> = transports
        .into_iter()
        .map(|t| {
            let (s, c, g) = (sources.clone(), charges.clone(), targets.clone());
            std::thread::spawn(move || rank_eval(t, &s, &c, &g))
        })
        .collect();
    // A panicking rank thread (e.g. an over-subscribed LCO — an
    // exactly-once violation) fails the join here.
    let outs: Vec<EvalOutput> = ranks.into_iter().map(|h| h.join().unwrap()).collect();
    killer.join().unwrap();

    // Both survivors convicted rank 2 and recovered instead of aborting.
    let mut reowned = Vec::new();
    for (rank, out) in outs.iter().enumerate().take(DEAD as usize) {
        let failure = out
            .report
            .lost_peer
            .unwrap_or_else(|| panic!("rank {rank} never convicted the severed peer"));
        assert_eq!(failure.rank, DEAD);
        assert!(out.report.fenced, "rank {rank} did not fence the dead peer");
        let info = out
            .recovery
            .unwrap_or_else(|| panic!("rank {rank} did not recover"));
        assert!(
            info.stats.reowned_nodes > 0,
            "rank {rank}: the dead rank owned DAG nodes, none were re-owned"
        );
        reowned.push(info.stats.reowned_nodes);
    }
    // Re-ownership is a pure function of the DAG and the dead rank, so
    // every survivor must have derived the identical re-owned set.
    assert_eq!(
        reowned[0], reowned[1],
        "survivors disagree on the re-owned set"
    );

    // The recovered answer: survivors' partial potentials sum to the
    // fault-free single-process reference to machine precision.
    let reference = DashmmBuilder::new(Laplace)
        .method(Method::AdvancedFmm)
        .threshold(THRESHOLD)
        .machine(1, WORKERS)
        .build(&sources, &charges, &targets)
        .evaluate();
    let merged: Vec<f64> = (0..N)
        .map(|i| outs[0].potentials[i] + outs[1].potentials[i])
        .collect();
    let num: f64 = merged
        .iter()
        .zip(&reference.potentials)
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    let den: f64 = reference.potentials.iter().map(|b| b * b).sum();
    let rel = (num / den).sqrt();
    assert!(
        rel < 1e-12,
        "recovered potentials diverge from the fault-free reference: rel err {rel:.2e}"
    );
}
