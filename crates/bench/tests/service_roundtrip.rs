//! Integration tests of the evaluation service against the real resident
//! FMM engine: concurrent clients with interleaved batches must each
//! receive exactly what a direct single-shot evaluation of their own
//! batch produces, and a client that vanishes mid-batch must leave the
//! server's reset path usable (the bounded queues drain, nothing leaks).

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dashmm_bench::service::ServiceWorkload;
use dashmm_core::ResidentFmm;
use dashmm_kernels::Laplace;
use dashmm_net::service::{
    encode_request, AdmissionConfig, EvalClient, EvalEngine, EvalServer, RespStatus, ServiceConfig,
};
use dashmm_net::wire::{encode_frame, FrameKind};

struct Resident(Arc<ResidentFmm<Laplace>>);

impl EvalEngine for Resident {
    fn evaluate(&self, targets: &[[f64; 3]], out: &mut [f64]) {
        self.0.evaluate(targets, out)
    }
}

fn small_workload() -> ServiceWorkload {
    ServiceWorkload {
        points: 3000,
        seed: 17,
        ..ServiceWorkload::default()
    }
}

/// Two clients, interleaved ragged batches, small tile budget so their
/// requests genuinely fuse; every response must match the client's own
/// single-shot evaluation to 1e-12.
#[test]
fn concurrent_clients_match_single_shot() {
    let workload = small_workload();
    let fmm = Arc::new(workload.build_engine());
    let cfg = ServiceConfig {
        tile_targets: 64, // force cross-client fusion
        eval_workers: 2,
        ..ServiceConfig::default()
    };
    let mut server =
        EvalServer::bind("127.0.0.1:0", Arc::new(Resident(Arc::clone(&fmm))), cfg).expect("bind");
    let addr = format!("127.0.0.1:{}", server.port());

    std::thread::scope(|scope| {
        for client_id in 0u32..2 {
            let fmm = Arc::clone(&fmm);
            let addr = addr.clone();
            scope.spawn(move || {
                let mut client = EvalClient::connect(&addr).expect("connect");
                // Ragged sizes so segment offsets within fused tiles vary.
                for (req, &batch) in [5usize, 33, 1, 17, 64, 9, 48, 2, 31, 12].iter().enumerate() {
                    let targets = workload.request_targets(client_id, req as u32, batch);
                    let resp = client.eval(client_id, &targets).expect("rpc");
                    assert_eq!(resp.status, RespStatus::Ok, "client {client_id} req {req}");
                    assert_eq!(resp.potentials.len(), batch);
                    let mut want = vec![0.0; batch];
                    fmm.evaluate(&targets, &mut want);
                    for (k, (&got, &want)) in resp.potentials.iter().zip(&want).enumerate() {
                        let err = (got - want).abs() / want.abs().max(1.0);
                        assert!(
                            err <= 1e-12,
                            "client {client_id} req {req} target {k}: \
                             got {got}, want {want} (rel err {err:.3e})"
                        );
                    }
                }
                client.close().expect("close");
            });
        }
    });

    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.totals.completed_requests, 20);
    assert!(stats.accounting.balanced(), "{:?}", stats.accounting);
    // The tiny tile budget must actually have fused work.
    assert!(
        stats.totals.tiles < 20,
        "expected cross-request fusion, got {} tiles for 20 requests",
        stats.totals.tiles
    );
    server.reset();
}

/// A client that dies mid-batch (no Bye, queued work outstanding) must
/// not wedge the bounded queues: its admission is released, the
/// accounting reconciles, `reset()` succeeds, and a later client gets
/// full service.
#[test]
fn mid_batch_disconnect_leaves_reset_usable() {
    // A deliberately slow engine so the dying client's requests are still
    // queued when its socket vanishes.
    let engine: Arc<dyn EvalEngine> = Arc::new(|targets: &[[f64; 3]], out: &mut [f64]| {
        std::thread::sleep(Duration::from_millis(20));
        for (t, o) in targets.iter().zip(out.iter_mut()) {
            *o = t[0] + t[1] + t[2];
        }
    });
    let cfg = ServiceConfig {
        tile_targets: 8, // one request per tile: the backlog stays queued
        admission: AdmissionConfig {
            max_tenant_targets: 64,
            max_total_targets: 64,
        },
        eval_workers: 1,
        ..ServiceConfig::default()
    };
    let mut server = EvalServer::bind("127.0.0.1:0", engine, cfg).expect("bind");
    let addr = format!("127.0.0.1:{}", server.port());

    {
        // Raw socket: pipeline several requests, read nothing, vanish.
        let mut s = TcpStream::connect(&addr).expect("connect");
        for req in 0..6u64 {
            let body = encode_request(req, 0, &[[0.5, 0.5, 0.5]; 8]);
            s.write_all(&encode_frame(FrameKind::EvalRequest, 0, &body))
                .expect("write");
        }
        s.shutdown(std::net::Shutdown::Both).expect("abort");
    }

    // The tenant's 48 admitted targets must drain (evaluated or purged)
    // once the disconnect is noticed — bounded queues cannot stay stuck.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let acct = server.stats().accounting;
        if acct.queued == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "queued targets stuck after disconnect: {acct:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // A fresh client still gets service after the carnage.
    let mut client = EvalClient::connect(&addr).expect("connect");
    let resp = client.eval(1, &[[1.0, 2.0, 3.0]]).expect("rpc");
    assert_eq!(resp.status, RespStatus::Ok);
    assert_eq!(resp.potentials, vec![6.0]);
    client.close().expect("close");

    server.shutdown();
    let stats = server.stats();
    assert!(stats.accounting.balanced(), "{:?}", stats.accounting);
    assert!(
        stats.accounting.purged > 0 || stats.totals.completed_requests >= 6,
        "disconnect must purge queued work or the work must have drained: {:?}",
        stats.accounting
    );
    // The regression: reset() must reconcile — a leak in purge accounting
    // (admission vs aggregator) panics here.
    server.reset();
    let stats = server.stats();
    assert_eq!(stats.totals.admitted_requests, 0);
    assert_eq!(stats.accounting.enqueued, 0);
    assert!(stats.tenants.is_empty());
}
