//! `stats` — poll a running evaluation server's telemetry snapshot.
//!
//! Connects to `--addr`, sends one `StatsRequest` per poll, and prints
//! each JSON snapshot to stdout (one per line).  With `--polls N` and
//! `--interval-ms M` it takes several spaced snapshots, which is enough
//! to compute rates offline from the cumulative counters or directly
//! from each snapshot's `window` section.
//!
//! ```text
//! stats --addr HOST:PORT [--polls N] [--interval-ms M] [--pretty]
//! ```

use dashmm_net::service::EvalClient;

struct Args {
    addr: String,
    polls: u32,
    interval_ms: u64,
    pretty: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        addr: String::new(),
        polls: 1,
        interval_ms: 1000,
        pretty: false,
    };
    let argv: Vec<String> = std::env::args().collect();
    let usage = |msg: &str| -> ! {
        eprintln!("error: {msg}");
        eprintln!(
            "usage: {} --addr HOST:PORT [--polls N] [--interval-ms M] [--pretty]",
            argv.first().map(String::as_str).unwrap_or("stats")
        );
        std::process::exit(2);
    };
    let mut i = 1;
    while i < argv.len() {
        let value = |flag: &str| -> &str {
            match argv.get(i + 1) {
                Some(v) => v,
                None => usage(&format!("{flag} expects a value")),
            }
        };
        macro_rules! num {
            ($flag:expr) => {
                value($flag)
                    .parse()
                    .unwrap_or_else(|_| usage(concat!($flag, " expects a number")))
            };
        }
        match argv[i].as_str() {
            "--addr" => a.addr = value("--addr").to_string(),
            "--polls" => a.polls = num!("--polls"),
            "--interval-ms" => a.interval_ms = num!("--interval-ms"),
            "--pretty" => {
                a.pretty = true;
                i += 1;
                continue;
            }
            other => usage(&format!("unknown flag {other}")),
        }
        i += 2;
    }
    if a.addr.is_empty() {
        usage("--addr is required");
    }
    if a.polls == 0 {
        usage("--polls must be positive");
    }
    a
}

/// Minimal pretty-printer for the hand-rolled JSON value (two-space
/// indent, keys in emission order).
fn pretty(json: &str) -> String {
    let mut out = String::with_capacity(json.len() * 2);
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escape = false;
    for c in json.chars() {
        if in_str {
            out.push(c);
            if escape {
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push(c);
            }
            '{' | '[' => {
                depth += 1;
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            _ => out.push(c),
        }
    }
    out
}

fn main() {
    let args = parse_args();
    let mut client = EvalClient::connect(&args.addr).unwrap_or_else(|e| {
        eprintln!("stats: connect to {} failed: {e}", args.addr);
        std::process::exit(1);
    });
    for poll in 0..args.polls {
        if poll > 0 {
            std::thread::sleep(std::time::Duration::from_millis(args.interval_ms));
        }
        let raw = client.stats_raw().unwrap_or_else(|e| {
            eprintln!("stats: poll failed: {e}");
            std::process::exit(1);
        });
        if args.pretty {
            println!("{}", pretty(&raw));
        } else {
            println!("{raw}");
        }
    }
    let _ = client.close();
}
