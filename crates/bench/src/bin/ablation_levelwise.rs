//! **Ablation** — asynchronous dataflow vs strict levelwise execution.
//!
//! The paper's central premise (§I): conventional SPMD implementations
//! execute the DAG "in a strict levelwise fashion", but "inputs to each
//! vertex in the DAG come from multiple levels and some inputs can be
//! processed earlier than in a levelwise schedule.  Thus strict levelwise
//! implementations cannot exploit all of the available parallelism,
//! limiting their strong scaling behavior."
//!
//! This ablation quantifies that claim: the same explicit DAG is replayed
//! through the simulator under the AMT dataflow schedule and under a
//! barrier-synchronised levelwise schedule, across core counts.
//!
//! Run: `cargo run --release -p dashmm-bench --bin ablation_levelwise [--n N]`

use dashmm_bench::{banner, build_workload, cost_model, distribute, Opts};
use dashmm_kernels::KernelKind;
use dashmm_sim::{simulate, NetworkModel, SimConfig};
use dashmm_tree::Distribution;

const CORES_PER_LOCALITY: usize = 32;

fn main() {
    let base = Opts::parse();
    banner(
        "Ablation — AMT dataflow vs strict levelwise (BSP) execution",
        &format!("n={} threshold={}", base.n, base.threshold),
    );
    let configs = [
        (Distribution::Cube, KernelKind::Laplace, "cube laplace"),
        (Distribution::Sphere, KernelKind::Laplace, "sphere laplace"),
    ];
    let net = NetworkModel::gemini();
    let mut advantages = Vec::new();
    for (dist, kernel, label) in configs {
        let opts = Opts {
            dist,
            kernel,
            ..base.clone()
        };
        let mut w = build_workload(&opts, 1);
        let cost = cost_model(&opts, opts.cost);
        println!("\n### {label}");
        println!(
            "{:>6}  {:>14}  {:>14}  {:>14}",
            "cores", "dataflow [ms]", "levelwise [ms]", "AMT advantage"
        );
        for localities in [1usize, 4, 16, 64, 128] {
            distribute(&w.problem, &mut w.asm, localities as u32);
            let run = |levelwise| {
                let cfg = SimConfig {
                    localities,
                    cores_per_locality: CORES_PER_LOCALITY,
                    priority: false,
                    trace: false,
                    levelwise,
                };
                simulate(&w.asm.dag, &cost, &net, &cfg)
            };
            let df = run(false);
            let lw = run(true);
            let adv = lw.makespan_us / df.makespan_us - 1.0;
            println!(
                "{:>6}  {:>14.2}  {:>14.2}  {:>13.1}%",
                localities * CORES_PER_LOCALITY,
                df.makespan_us / 1e3,
                lw.makespan_us / 1e3,
                adv * 100.0
            );
            if localities >= 16 {
                advantages.push(adv);
            }
        }
    }
    println!("\n--- shape checks ---");
    let best = advantages.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "best dataflow advantage at ≥ 512 cores: {:.1}%",
        best * 100.0
    );
    check(
        "dataflow is never slower than levelwise",
        advantages.iter().all(|&a| a >= -1e-9),
    );
    check(
        "dataflow advantage is material at scale (≥ 10%)",
        best >= 0.10,
    );
}

fn check(what: &str, ok: bool) {
    println!("[{}] {}", if ok { "ok" } else { "MISMATCH" }, what);
}
