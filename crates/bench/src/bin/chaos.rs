//! **Chaos** — the fig4-style workload run under a seeded fault plan.
//!
//! Two OS-process localities (or more with `--localities`) evaluate the
//! cube/Laplace workload over loopback TCP while the transport injects the
//! faults described by `--faults SPEC` (see `dashmm_amt::FaultPlan`):
//! frame drop / duplicate / corrupt / delay / reorder, plus an optional
//! locality kill or stall.  The run then has to prove the robustness
//! claims:
//!
//! - **Loss plans** (drop/dup/corrupt/delay/reorder/stall): the merged
//!   potentials must match the fault-free single-process reference to
//!   machine precision (rel err ≤ 1e-12) — retransmission and duplicate
//!   suppression make the faults invisible to the answer.
//! - **Kill plans** (`kill=R@MS`): the victim exits with the kill code,
//!   every survivor detects the dead peer, writes a partial
//!   `results/chaos_partial_summary.json` naming the lost work, and exits
//!   with the degraded code — nobody hangs.  The launcher verifies that
//!   exit-code pattern and exits 0 when the clean abort is confirmed.
//! - **Recovery** (`--recover`, implies a kill plan — one is added if the
//!   spec has none): the survivors fence the dead rank, re-own its DAG
//!   slice, replay the orphaned work, and must produce the *complete*
//!   answer (rel err ≤ 1e-12 vs the fault-free reference) and exit 0.
//!   Rank 0 writes `results/BENCH_recovery.json` with the measured
//!   recovery latency, replayed-edge counts, the recompute cost next to
//!   the fault-free wall-clock, and the simulator's recovery estimate.
//! - **Parity** (sim/runtime): the simulator replays the same seeded plan
//!   over the same DAG and its retransmit rate must land within a
//!   tolerance band of the measured one.
//!
//! A wall-clock watchdog (`--budget-s`, default 55 s) aborts every
//! process past the budget, so a wedged run fails loudly instead of
//! hanging CI.
//!
//! Run: `cargo run --release -p dashmm-bench --bin chaos -- --n 3000 \
//!       --faults "seed=7,drop=0.02,dup=0.01,stall=1@50+100"`

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dashmm_amt::{CoalesceConfig, FaultPlan, PeerFailure, Transport, ENV_FAULTS};
use dashmm_bench::{banner, cost_model, Opts, TransportMode};
use dashmm_core::{DashmmBuilder, Method};
use dashmm_kernels::{Kernel, KernelKind, Laplace, Yukawa};
use dashmm_net::{
    bootstrap, f64s_to_bytes, merge_sum_f64, CommMetrics, LaunchReport, Role, SocketTransport,
    KILL_EXIT_CODE,
};
use dashmm_obs::json::{obj, Value};
use dashmm_obs::summary::write_summary;
use dashmm_sim::{simulate, NetworkModel, SimConfig};

/// Exit code of a surviving rank that aborted because a peer died.
const DEGRADED_EXIT_CODE: i32 = 75;
/// Exit code when the wall-clock watchdog fires.
const WATCHDOG_EXIT_CODE: i32 = 99;
/// Plan used when `--faults` is not given: 2% drop, 1% duplication, and a
/// 100 ms stall of rank 1 — the acceptance scenario (≥1% drop + one
/// stall) the answer must survive bit-for-bit.
const DEFAULT_SPEC: &str = "seed=7,drop=0.02,dup=0.01,stall=1@50+100";
const DEFAULT_BUDGET_S: u64 = 55;

fn main() {
    let mut opts = Opts::parse();
    // This binary is only meaningful as a measured multi-process run.
    opts.transport = TransportMode::Socket;
    if opts.localities < 2 {
        opts.localities = 2;
    }
    let mut spec = opts
        .faults
        .clone()
        .unwrap_or_else(|| DEFAULT_SPEC.to_string());
    let mut plan = match FaultPlan::parse(&spec) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: --faults `{spec}`: {e}");
            std::process::exit(2);
        }
    };
    if opts.recover {
        if plan.kill.is_none() {
            // Recovery is only provable against an actual death: kill the
            // last rank mid-run (never rank 0 — losing the coordinator is
            // out of recovery's scope).
            spec = format!("{spec},kill={}@120", opts.localities - 1);
            plan = FaultPlan::parse(&spec).expect("augmented fault spec parses");
        }
        let kill = plan.kill.expect("recover mode has a kill");
        if kill.rank == 0 || kill.rank as usize >= opts.localities {
            eprintln!(
                "error: --recover needs a kill of rank 1..{} (got {})",
                opts.localities - 1,
                kill.rank
            );
            std::process::exit(2);
        }
        // Reaches every re-executed rank's transport via the environment,
        // like the fault plan itself.
        std::env::set_var("DASHMM_RECOVER", "1");
    }
    // Every process (launcher and re-executed ranks alike) arms its own
    // watchdog: a chaos run may abort, but it must never hang.
    let budget_s = opts.budget_s.unwrap_or(DEFAULT_BUDGET_S);
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_secs(budget_s));
        eprintln!("chaos: wall-clock budget of {budget_s}s exceeded, aborting");
        std::process::exit(WATCHDOG_EXIT_CODE);
    });
    // The launcher re-executes this binary once per rank with the
    // environment inherited, so exporting the plan here reaches every
    // rank's transport.
    std::env::set_var(ENV_FAULTS, &spec);
    let cfg = if opts.no_coalesce {
        CoalesceConfig::disabled()
    } else {
        CoalesceConfig::default()
    };
    match bootstrap(opts.localities as u32, cfg) {
        Ok(Role::Launcher(report)) => {
            banner(
                "Chaos — fig4-style workload under an injected fault plan",
                &format!(
                    "plan: {plan}  |  {} localities, n={}, budget {budget_s}s",
                    opts.localities, opts.n
                ),
            );
            std::process::exit(verdict(&report, &plan, opts.recover));
        }
        Ok(Role::Rank(transport)) => rank_main(&opts, plan, transport),
        Err(e) => {
            eprintln!("multi-process bootstrap failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Judge the per-rank exit codes against the plan.  Returns the launcher's
/// exit code: 0 when the run proved what it had to (clean completion, or —
/// under a kill — the victim died with the kill code and every survivor
/// degraded gracefully, or, with `recover`, *completed* despite the
/// death), 1 otherwise.
fn verdict(report: &LaunchReport, plan: &FaultPlan, recover: bool) -> i32 {
    let Some(kill) = plan.kill else {
        return if report.success() {
            println!("[ok] all localities exited cleanly under plan `{plan}`");
            0
        } else {
            for (rank, st) in &report.statuses {
                if !st.success() {
                    println!("[MISMATCH] locality {rank} failed ({st}) with no kill scheduled");
                }
            }
            1
        };
    };
    let mut ok = true;
    for (rank, st) in &report.statuses {
        let code = st.code();
        if *rank == kill.rank {
            let died = code == Some(KILL_EXIT_CODE);
            ok &= died;
            println!(
                "[{}] victim locality {rank} exited with the kill code {KILL_EXIT_CODE} (got {st})",
                if died { "ok" } else { "MISMATCH" }
            );
        } else if recover {
            // Recovery mode gates on the *complete* answer: every
            // survivor must verify the recovered potentials and exit 0.
            let recovered = code == Some(0);
            ok &= recovered;
            println!(
                "[{}] survivor locality {rank} exited {} (0 required: recovery must complete)",
                if recovered { "ok" } else { "MISMATCH" },
                code.map_or_else(|| "by signal".to_string(), |c| c.to_string()),
            );
        } else {
            // A survivor either degraded gracefully or — if termination
            // won the race against the kill — completed normally.
            let graceful = matches!(code, Some(0) | Some(DEGRADED_EXIT_CODE));
            ok &= graceful;
            println!(
                "[{}] survivor locality {rank} exited {} (0 or {DEGRADED_EXIT_CODE} expected)",
                if graceful { "ok" } else { "MISMATCH" },
                code.map_or_else(|| "by signal".to_string(), |c| c.to_string()),
            );
        }
    }
    if ok {
        println!(
            "[ok] {}",
            if recover {
                "recovery verified: the survivors completed the evaluation without the dead locality"
            } else {
                "clean abort verified: no survivor hung on the dead locality"
            }
        );
        0
    } else {
        1
    }
}

fn rank_main(opts: &Opts, plan: FaultPlan, transport: Arc<SocketTransport>) -> ! {
    let mut code = match opts.kernel {
        KernelKind::Laplace => rank_eval(opts, plan, &transport, Laplace),
        KernelKind::Yukawa(lam) => rank_eval(opts, plan, &transport, Yukawa::new(lam)),
    };
    if code != DEGRADED_EXIT_CODE {
        // Every rank holds its sockets open until all are done comparing —
        // even after a failed check, or the peers would block on a barrier
        // nobody joins.  Under a kill plan the barrier itself may observe
        // the death.
        if transport.barrier().is_err() {
            code = if transport.failed_peer().is_some() {
                DEGRADED_EXIT_CODE
            } else {
                code.max(1)
            };
        }
    }
    transport.shutdown();
    std::process::exit(code);
}

fn rank_eval<K: Kernel>(
    opts: &Opts,
    plan: FaultPlan,
    transport: &Arc<SocketTransport>,
    kernel: K,
) -> i32 {
    let rank = transport.rank();
    let (sources, targets, charges) = opts.ensembles();
    let eval = DashmmBuilder::new(kernel.clone())
        .method(Method::AdvancedFmm)
        .threshold(opts.threshold)
        .machine(opts.localities, opts.workers)
        .transport(Arc::clone(transport) as Arc<dyn Transport>)
        .recover(opts.recover)
        .build(&sources, &charges, &targets);
    let t0 = Instant::now();
    let out = eval.evaluate();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let m = transport.metrics();
    println!("{}", m.digest(rank));

    if let Some(failure) = out.report.lost_peer {
        match &out.recovery {
            Some(info) => println!(
                "[rank {rank}] survived {failure}: {} nodes re-owned, \
                 {} sources replayed ({} edges), {} LCOs re-armed, \
                 {} duplicates absorbed, recovery {:.1} ms",
                info.stats.reowned_nodes,
                info.stats.replayed_sources,
                info.stats.replayed_edges,
                info.stats.rearmed_lcos,
                info.dedup_skipped,
                info.recovery_ms,
            ),
            None => return degraded(rank, failure, opts, &plan, &eval, &m, wall_ms),
        }
    }

    // The answer under faults must match the fault-free single-process
    // reference bit-for-bit (to merge rounding): gather and verify.  In a
    // recovered run the dead rank's gather slot is empty — drop it before
    // merging.
    let parts = match transport.gather(&f64s_to_bytes(&out.potentials)) {
        Ok(p) => p,
        Err(_) => {
            return transport.failed_peer_info().map_or(1, |dead| {
                degraded(rank, dead, opts, &plan, &eval, &m, wall_ms)
            })
        }
    };
    let my_rel = f64s_to_bytes(&[
        m.retransmit_frames as f64,
        m.per_dest.iter().map(|d| d.frames).sum::<u64>() as f64,
        m.injected_total() as f64,
        m.dup_frames_rx as f64,
    ]);
    let rel_parts = match transport.gather(&my_rel) {
        Ok(p) => p,
        Err(_) => {
            return transport.failed_peer_info().map_or(1, |dead| {
                degraded(rank, dead, opts, &plan, &eval, &m, wall_ms)
            })
        }
    };

    let Some(parts) = parts else { return 0 };
    // Rank 0: verify, print the reliability story, check sim parity.
    let mut code = 0;
    let parts: Vec<_> = parts.into_iter().filter(|p| !p.is_empty()).collect();
    let merged = merge_sum_f64(&parts);
    let t_ref = Instant::now();
    let reference = DashmmBuilder::new(kernel)
        .method(Method::AdvancedFmm)
        .threshold(opts.threshold)
        .machine(1, opts.workers)
        .build(&sources, &charges, &targets)
        .evaluate();
    let reference_ms = t_ref.elapsed().as_secs_f64() * 1e3;
    let e = rel_err(&merged, &reference.potentials);
    let exact = e < 1e-12;
    if !exact {
        code = 1;
    }
    println!(
        "[rank 0] merged potentials vs fault-free single-process reference: \
         rel err {e:.2e} [{}]",
        if exact { "ok" } else { "MISMATCH" }
    );
    let rel_parts: Vec<_> = rel_parts
        .expect("rank 0 gets reliability parts")
        .into_iter()
        .filter(|p| !p.is_empty())
        .collect();
    let sums = merge_sum_f64(&rel_parts);
    let (rtx, frames, injected, dups) = (
        sums[0] as u64,
        sums[1] as u64,
        sums[2] as u64,
        sums[3] as u64,
    );
    println!(
        "[rank 0] measured: {wall_ms:.1} ms wall, {frames} parcel frames, \
         {injected} faults injected, {rtx} retransmit frames, \
         {dups} duplicate frames suppressed"
    );
    let lossy = plan.drop > 0.0 || plan.corrupt > 0.0 || plan.dup > 0.0 || plan.reorder > 0.0;
    if lossy && frames > 200 && injected == 0 {
        code = 1;
        println!("[MISMATCH] an active loss plan injected nothing over {frames} frames");
    }

    // Sim/runtime parity: replay the same seeded plan over the same DAG in
    // the simulator and compare retransmit *rates* (the sim coalesces per
    // task, the transport across tasks, so absolute frame counts differ).
    let cost = cost_model(opts, opts.cost);
    let mut net = NetworkModel::gemini().with_faults(plan);
    net.coalesce = transport.coalesce_config();
    let sim = simulate(
        eval.dag(),
        &cost,
        &net,
        &SimConfig {
            localities: opts.localities,
            cores_per_locality: opts.workers,
            priority: false,
            trace: false,
            levelwise: false,
        },
    );
    let rate_m = rtx as f64 / frames.max(1) as f64;
    let rate_s = sim.retransmits as f64 / sim.messages.max(1) as f64;
    let tol = 0.5 * rate_m.max(rate_s) + 0.02;
    // The band is only meaningful for pure frame-fate plans: a stall is
    // runtime-only (the sim cannot see it) and causes legitimate
    // timeout-driven retransmits the sim will never count — and so is a
    // kill, whose recovery replay re-sends parcels the sim never models.
    // With few loss events on either side the rates are too noisy to
    // compare either.
    let enforced = plan.stall.is_none() && plan.kill.is_none();
    let parity = (rate_m - rate_s).abs() <= tol || rtx + sim.retransmits < 10;
    if enforced && !parity {
        code = 1;
    }
    println!(
        "[rank 0] parity: simulated {} retransmits / {} messages ({:.4}/frame) \
         vs measured {rtx} / {frames} ({rate_m:.4}/frame), band ±{tol:.4} [{}]",
        sim.retransmits,
        sim.messages,
        rate_s,
        if !enforced {
            "info only: stall plans retransmit on timeouts the sim cannot model"
        } else if parity {
            "ok"
        } else {
            "MISMATCH"
        }
    );

    // Recovery bench artifact: the measured recovery next to the fault-free
    // wall-clock and the simulator's analytic estimate of the same loss.
    if let Some(info) = out.recovery {
        let suspicion_ms: f64 = std::env::var("DASHMM_SUSPICION_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1_000.0);
        let est = dashmm_sim::estimate_recovery(
            eval.dag(),
            &cost,
            &NetworkModel::gemini(),
            &SimConfig {
                localities: opts.localities,
                cores_per_locality: opts.workers,
                priority: false,
                trace: false,
                levelwise: false,
            },
            info.failure.rank,
            suspicion_ms * 1e3,
        );
        // The sim derives the re-owned set from the same distribution rule
        // the runtime fences on, so the node counts must agree exactly.
        let counts_agree = est.reowned_nodes == info.stats.reowned_nodes;
        if !counts_agree {
            code = 1;
        }
        println!(
            "[rank 0] recovery: {} re-owned, replayed {} edges in {:.1} ms \
             (fault-free reference {reference_ms:.1} ms, overhead x{:.2}); \
             sim estimates {} re-owned / {} edges, {:.1} ms total [{}]",
            info.stats.reowned_nodes,
            info.stats.replayed_edges,
            info.recovery_ms,
            wall_ms / reference_ms.max(1e-9),
            est.reowned_nodes,
            est.replayed_edges,
            est.total_us / 1e3,
            if counts_agree { "ok" } else { "MISMATCH" }
        );
        let _ = std::fs::create_dir_all("results");
        let path = Path::new("results").join("BENCH_recovery.json");
        let bench = obj(vec![
            (
                "workload",
                obj(vec![
                    ("name", Value::from("chaos_recovery")),
                    ("n", Value::from(opts.n)),
                    ("localities", Value::from(opts.localities)),
                    ("workers", Value::from(opts.workers)),
                    ("fault_plan", Value::from(plan.to_string())),
                ]),
            ),
            (
                "failure",
                obj(vec![
                    ("rank", Value::from(info.failure.rank as u64)),
                    ("epoch", Value::from(info.failure.epoch as u64)),
                    ("conviction", Value::from(info.failure.reason.name())),
                ]),
            ),
            (
                "measured",
                obj(vec![
                    ("first_run_ms", Value::from(info.first_run_ms)),
                    ("recovery_ms", Value::from(info.recovery_ms)),
                    ("wall_ms", Value::from(wall_ms)),
                    ("fault_free_reference_ms", Value::from(reference_ms)),
                    (
                        "overhead_vs_fault_free",
                        Value::from(wall_ms / reference_ms.max(1e-9)),
                    ),
                    ("reowned_nodes", Value::from(info.stats.reowned_nodes)),
                    ("replayed_sources", Value::from(info.stats.replayed_sources)),
                    ("replayed_edges", Value::from(info.stats.replayed_edges)),
                    ("rearmed_lcos", Value::from(info.stats.rearmed_lcos)),
                    ("parked_batches", Value::from(info.stats.parked_batches)),
                    ("dedup_skipped", Value::from(info.dedup_skipped)),
                ]),
            ),
            (
                "simulated",
                obj(vec![
                    ("detect_us", Value::from(est.detect_us)),
                    ("recompute_us", Value::from(est.recompute_us)),
                    ("replay_comm_us", Value::from(est.replay_comm_us)),
                    ("total_us", Value::from(est.total_us)),
                    ("reowned_nodes", Value::from(est.reowned_nodes)),
                    ("replayed_edges", Value::from(est.replayed_edges)),
                ]),
            ),
        ]);
        match write_summary(&path, &bench) {
            Ok(()) => println!("[rank 0] wrote {}", path.display()),
            Err(e) => eprintln!("[rank 0] failed to write {}: {e}", path.display()),
        }
    }
    code
}

/// A peer died mid-run: name the lost work, write the partial summary
/// (rank 0), and hand back the degraded exit code.
fn degraded<K: Kernel>(
    rank: u32,
    dead: PeerFailure,
    opts: &Opts,
    plan: &FaultPlan,
    eval: &dashmm_core::Evaluation<K>,
    m: &CommMetrics,
    wall_ms: f64,
) -> i32 {
    let lost = eval
        .dag()
        .nodes()
        .iter()
        .filter(|n| n.locality == dead.rank)
        .count();
    let total = eval.dag().nodes().len();
    println!(
        "[rank {rank}] peer {dead} died mid-run; \
         {lost}/{total} DAG nodes were assigned to it — aborting cleanly"
    );
    if rank == 0 {
        let _ = std::fs::create_dir_all("results");
        let path = Path::new("results").join("chaos_partial_summary.json");
        let summary = obj(vec![
            (
                "workload",
                obj(vec![
                    ("name", Value::from("chaos")),
                    ("n", Value::from(opts.n)),
                    ("localities", Value::from(opts.localities)),
                    ("workers", Value::from(opts.workers)),
                    ("wall_ms", Value::from(wall_ms)),
                ]),
            ),
            ("fault_plan", Value::from(plan.to_string())),
            (
                "aborted",
                obj(vec![
                    ("completed", Value::from(false)),
                    ("lost_locality", Value::from(dead.rank as u64)),
                    ("failure_epoch", Value::from(dead.epoch as u64)),
                    ("conviction", Value::from(dead.reason.name())),
                    ("lost_dag_nodes", Value::from(lost)),
                    ("total_dag_nodes", Value::from(total)),
                ]),
            ),
            ("comm", m.to_json()),
        ]);
        match write_summary(&path, &summary) {
            Ok(()) => println!(
                "[rank 0] wrote partial {} naming the lost work",
                path.display()
            ),
            Err(e) => eprintln!("[rank 0] failed to write {}: {e}", path.display()),
        }
    }
    DEGRADED_EXIT_CODE
}

/// Relative L2 error of `got` versus `want`.
fn rel_err(got: &[f64], want: &[f64]) -> f64 {
    let num: f64 = got.iter().zip(want).map(|(a, b)| (a - b) * (a - b)).sum();
    let den: f64 = want.iter().map(|b| b * b).sum();
    (num / den).sqrt()
}
