//! `serve` — the resident FMM evaluation server.
//!
//! Builds the deterministic service workload (tree + upward-pass
//! expansions) once, binds a TCP port, prints the ready line
//! (`SERVE ready port=<p> ...`) and serves evaluation requests until a
//! client sends the administrative shutdown frame.  On exit it prints the
//! service counters and, with `--summary PATH`, writes them as JSON.
//!
//! With `--stats-interval S` the server also polls its own stats
//! endpoint every `S` seconds over a loopback client connection and
//! prints a one-line digest to stderr (note: each poll advances the
//! snapshot's rate window, so leave this off when an external poller
//! owns the window).  The final telemetry snapshot always lands in the
//! `--summary` JSON under `"telemetry"`.
//!
//! ```text
//! serve [--points N] [--seed S] [--theta X] [--threshold T]
//!       [--port P] [--tile N] [--workers W]
//!       [--max-tenant-targets N] [--max-total-targets N]
//!       [--stats-interval S] [--summary PATH]
//! ```

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use dashmm_bench::service::{ServiceWorkload, READY_PREFIX};
use dashmm_core::ResidentFmm;
use dashmm_kernels::Laplace;
use dashmm_net::service::{
    AdmissionConfig, EngineBreakdown, EvalClient, EvalEngine, EvalServer, ServiceConfig,
};
use dashmm_obs::json::{obj, Value};
use dashmm_obs::summary::write_summary;

struct Args {
    workload: ServiceWorkload,
    port: u16,
    tile: usize,
    workers: usize,
    admission: AdmissionConfig,
    stats_interval_s: f64,
    summary: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut a = Args {
        workload: ServiceWorkload::default(),
        port: 0,
        tile: 1024,
        workers: 2,
        admission: AdmissionConfig::default(),
        stats_interval_s: 0.0,
        summary: None,
    };
    let argv: Vec<String> = std::env::args().collect();
    let usage = |msg: &str| -> ! {
        eprintln!("error: {msg}");
        eprintln!(
            "usage: {} [--points N] [--seed S] [--theta X] [--threshold T] \
             [--port P] [--tile N] [--workers W] [--max-tenant-targets N] \
             [--max-total-targets N] [--stats-interval S] [--summary PATH]",
            argv.first().map(String::as_str).unwrap_or("serve")
        );
        std::process::exit(2);
    };
    let mut i = 1;
    while i < argv.len() {
        let value = |flag: &str| -> &str {
            match argv.get(i + 1) {
                Some(v) => v,
                None => usage(&format!("{flag} expects a value")),
            }
        };
        macro_rules! num {
            ($flag:expr) => {
                value($flag)
                    .parse()
                    .unwrap_or_else(|_| usage(concat!($flag, " expects a number")))
            };
        }
        match argv[i].as_str() {
            "--points" => a.workload.points = num!("--points"),
            "--seed" => a.workload.seed = num!("--seed"),
            "--theta" => a.workload.theta = num!("--theta"),
            "--threshold" => a.workload.threshold = num!("--threshold"),
            "--port" => a.port = num!("--port"),
            "--tile" => a.tile = num!("--tile"),
            "--workers" => a.workers = num!("--workers"),
            "--max-tenant-targets" => a.admission.max_tenant_targets = num!("--max-tenant-targets"),
            "--max-total-targets" => a.admission.max_total_targets = num!("--max-total-targets"),
            "--stats-interval" => a.stats_interval_s = num!("--stats-interval"),
            "--summary" => a.summary = Some(PathBuf::from(value("--summary"))),
            other => usage(&format!("unknown flag {other}")),
        }
        i += 2;
    }
    a
}

/// Adapter giving the shared engine to the server's worker threads.
struct Resident(ResidentFmm<Laplace>);

impl EvalEngine for Resident {
    fn evaluate(&self, targets: &[[f64; 3]], out: &mut [f64]) {
        self.0.evaluate(targets, out)
    }

    fn evaluate_traced(&self, targets: &[[f64; 3]], out: &mut [f64]) -> EngineBreakdown {
        let prof = self.0.evaluate_profiled(targets, out);
        EngineBreakdown {
            m2t_us: prof.m2t_us,
            p2p_us: prof.p2p_us,
            far_pairs: prof.far_pairs,
            near_pairs: prof.near_pairs,
        }
    }
}

fn main() {
    let args = parse_args();
    let t0 = std::time::Instant::now();
    let fmm = args.workload.build_engine();
    let build_s = t0.elapsed().as_secs_f64();
    eprintln!(
        "serve: resident state up in {build_s:.2}s ({} sources, depth {}, {} boxes)",
        fmm.num_sources(),
        fmm.depth(),
        fmm.num_nodes()
    );
    let cfg = ServiceConfig {
        tile_targets: args.tile,
        admission: args.admission,
        eval_workers: args.workers,
        ..ServiceConfig::default()
    };
    let depth = fmm.depth();
    let points = fmm.num_sources();
    let engine: Arc<dyn EvalEngine> = Arc::new(Resident(fmm));
    let mut server = EvalServer::bind(&format!("127.0.0.1:{}", args.port), engine, cfg)
        .unwrap_or_else(|e| {
            eprintln!("serve: bind failed: {e}");
            std::process::exit(1);
        });
    // The ready line the load tester parses; flush so a piped reader sees
    // it immediately.
    println!(
        "{}{} points={points} depth={depth}",
        READY_PREFIX,
        server.port()
    );
    std::io::stdout().flush().expect("flush ready line");

    // Self-polling digest loop: a loopback stats client, so the printed
    // numbers travel the same wire path any external poller would use.
    let poller = (args.stats_interval_s > 0.0).then(|| {
        let addr = format!("127.0.0.1:{}", server.port());
        let interval = std::time::Duration::from_secs_f64(args.stats_interval_s);
        std::thread::spawn(move || {
            let Ok(mut client) = EvalClient::connect(&addr) else {
                return;
            };
            loop {
                std::thread::sleep(interval);
                let Ok(snap) = client.stats() else { break };
                let n = |path: [&str; 2]| {
                    snap.get(path[0])
                        .and_then(|s| s.get(path[1]))
                        .and_then(Value::as_f64)
                        .unwrap_or(0.0)
                };
                let interval_s = n(["window", "interval_us"]) / 1e6;
                let rate = if interval_s > 0.0 {
                    n(["window", "completed_requests"]) / interval_s
                } else {
                    0.0
                };
                let p99 = snap
                    .get("latency")
                    .and_then(|l| l.get("total"))
                    .and_then(|t| t.get("p99_us"))
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0);
                eprintln!(
                    "serve: stats completed={} shed={} queued={} rate={rate:.0}req/s p99={p99:.0}us",
                    n(["totals", "completed_requests"]),
                    n(["totals", "shed_requests"]),
                    n(["queues", "queued_requests"]),
                );
            }
        })
    });

    server.wait();
    // The last snapshot is taken before shutdown tears the hub down.
    let telemetry = dashmm_obs::json::parse(&server.stats_json())
        .unwrap_or_else(|e| panic!("serve: own stats snapshot failed to parse: {e}"));
    server.shutdown();
    if let Some(p) = poller {
        let _ = p.join();
    }
    let stats = server.stats();
    eprintln!(
        "serve: done — {} requests ({} shed, {} bad) over {} tiles \
         ({:.1} requests/tile), {} targets, p99 {:.0}us",
        stats.totals.completed_requests,
        stats.totals.shed_requests,
        stats.totals.bad_requests,
        stats.totals.tiles,
        stats.mean_tile_requests(),
        stats.totals.evaluated_targets,
        stats.latency.p99_us,
    );
    if let Some(path) = args.summary {
        let summary = obj(vec![
            ("build_s", Value::from(build_s)),
            ("stats", stats.to_json()),
            ("spans", server.service_section()),
            ("telemetry", telemetry),
        ]);
        if let Err(e) = write_summary(&path, &summary) {
            eprintln!("serve: failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    // The reset path must be clean after every disconnect the run saw;
    // this asserts the accounting reconciles (the mid-batch-disconnect
    // regression guard, exercised on every server exit).
    server.reset();
}
