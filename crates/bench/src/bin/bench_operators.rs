//! Batched vs per-edge operator microbenchmark → `BENCH_operators.json`.
//!
//! Measures every batched operator (M2L, M2M, L2L, I2I) for Laplace and
//! Yukawa against the per-edge loop the runtime used to run, prints a
//! table, and writes the machine-readable JSON artifact.  With
//! `--min-m2l-speedup X` the binary exits non-zero when any M2L case
//! falls below `X`× — the CI gate that keeps the batched hot path honest.
//!
//! `DASHMM_BENCH_FAST=1` shrinks the repetition count for smoke runs.

use std::path::PathBuf;

use dashmm_bench::{banner, opbench};

struct Args {
    edges: usize,
    out: PathBuf,
    min_m2l_speedup: Option<f64>,
}

fn parse_args() -> Args {
    let mut a = Args {
        edges: 1024,
        out: PathBuf::from("BENCH_operators.json"),
        min_m2l_speedup: None,
    };
    let argv: Vec<String> = std::env::args().collect();
    let usage = |msg: &str| -> ! {
        eprintln!("error: {msg}");
        eprintln!(
            "usage: {} [--edges N] [--out PATH] [--min-m2l-speedup X]",
            argv.first()
                .map(String::as_str)
                .unwrap_or("bench_operators")
        );
        std::process::exit(2);
    };
    let mut i = 1;
    while i < argv.len() {
        let value = |flag: &str| -> &str {
            match argv.get(i + 1) {
                Some(v) => v,
                None => usage(&format!("{flag} expects a value")),
            }
        };
        match argv[i].as_str() {
            "--edges" => {
                a.edges = value("--edges")
                    .parse()
                    .unwrap_or_else(|_| usage("--edges expects an integer"));
                i += 2;
            }
            "--out" => {
                a.out = PathBuf::from(value("--out"));
                i += 2;
            }
            "--min-m2l-speedup" => {
                a.min_m2l_speedup = Some(
                    value("--min-m2l-speedup")
                        .parse()
                        .unwrap_or_else(|_| usage("--min-m2l-speedup expects a number")),
                );
                i += 2;
            }
            other => usage(&format!("unknown option {other}")),
        }
    }
    a
}

fn main() {
    let args = parse_args();
    let fast = std::env::var("DASHMM_BENCH_FAST").is_ok_and(|v| v == "1");
    let reps = opbench::default_reps();
    banner(
        "Batched operator hot path: per-edge loop vs blocked multi-RHS GEMM",
        &format!("edges={} reps={} fast_mode={}", args.edges, reps, fast),
    );

    let cases = opbench::run_all(args.edges, reps);

    println!(
        "{:<10} {:<10} {:>8} {:>14} {:>14} {:>9}",
        "op", "kernel", "edges", "per-edge ns", "batched ns", "speedup"
    );
    for c in &cases {
        println!(
            "{:<10} {:<10} {:>8} {:>14.1} {:>14.1} {:>8.2}x",
            c.op,
            c.kernel,
            c.edges,
            c.per_edge_ns,
            c.batched_ns,
            c.speedup()
        );
    }

    opbench::write_json(&args.out, &cases, args.edges, fast).expect("write BENCH_operators.json");
    println!("\nwrote {}", args.out.display());

    if let Some(min) = args.min_m2l_speedup {
        let mut failed = false;
        for c in cases.iter().filter(|c| c.op == "M2L") {
            if c.speedup() < min {
                eprintln!(
                    "GATE FAIL: M2L/{} batched speedup {:.2}x below required {:.2}x",
                    c.kernel,
                    c.speedup(),
                    min
                );
                failed = true;
            } else {
                println!(
                    "GATE OK:   M2L/{} batched speedup {:.2}x >= {:.2}x",
                    c.kernel,
                    c.speedup(),
                    min
                );
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
