//! Batched vs per-edge operator microbenchmark → `BENCH_operators.json`.
//!
//! Measures every batched expansion operator (M2L, M2M, L2L, I2I) for
//! Laplace and Yukawa against the per-edge loop the runtime used to run,
//! plus the particle-class operators (S2T, S2M, L2T) as scalar per-pair
//! replicas vs the SoA tile engine, prints a table, and writes the
//! machine-readable JSON artifact.
//!
//! Gates (each exits non-zero on failure):
//! - `--min-m2l-speedup X`: every M2L case must reach `X`× batched speedup.
//! - `--min-p2p-speedup X`: every S2T case must reach `X`×.
//! - `--min-s2m-speedup X` / `--min-l2t-speedup X`: likewise for S2M/L2T.
//!
//! The particle gates compare the vectorized (AVX2+FMA) kernel path
//! against scalar per-pair evaluation, so on hardware without those
//! features they are skipped with a notice instead of failing — the
//! batched path degenerates to the same scalar loop there.
//!
//! `DASHMM_BENCH_FAST=1` shrinks the repetition count for smoke runs.

use std::path::PathBuf;

use dashmm_bench::{banner, opbench};

struct Args {
    edges: usize,
    leaf: usize,
    out: PathBuf,
    min_m2l_speedup: Option<f64>,
    min_p2p_speedup: Option<f64>,
    min_s2m_speedup: Option<f64>,
    min_l2t_speedup: Option<f64>,
}

fn parse_args() -> Args {
    let mut a = Args {
        edges: 1024,
        leaf: 60,
        out: PathBuf::from("BENCH_operators.json"),
        min_m2l_speedup: None,
        min_p2p_speedup: None,
        min_s2m_speedup: None,
        min_l2t_speedup: None,
    };
    let argv: Vec<String> = std::env::args().collect();
    let usage = |msg: &str| -> ! {
        eprintln!("error: {msg}");
        eprintln!(
            "usage: {} [--edges N] [--leaf N] [--out PATH] [--min-m2l-speedup X] \
             [--min-p2p-speedup X] [--min-s2m-speedup X] [--min-l2t-speedup X]",
            argv.first()
                .map(String::as_str)
                .unwrap_or("bench_operators")
        );
        std::process::exit(2);
    };
    let mut i = 1;
    while i < argv.len() {
        let value = |flag: &str| -> &str {
            match argv.get(i + 1) {
                Some(v) => v,
                None => usage(&format!("{flag} expects a value")),
            }
        };
        let parse_f64 = |flag: &str| -> f64 {
            value(flag)
                .parse()
                .unwrap_or_else(|_| usage(&format!("{flag} expects a number")))
        };
        match argv[i].as_str() {
            "--edges" => {
                a.edges = value("--edges")
                    .parse()
                    .unwrap_or_else(|_| usage("--edges expects an integer"));
                i += 2;
            }
            "--leaf" => {
                a.leaf = value("--leaf")
                    .parse()
                    .unwrap_or_else(|_| usage("--leaf expects an integer"));
                i += 2;
            }
            "--out" => {
                a.out = PathBuf::from(value("--out"));
                i += 2;
            }
            "--min-m2l-speedup" => {
                a.min_m2l_speedup = Some(parse_f64("--min-m2l-speedup"));
                i += 2;
            }
            "--min-p2p-speedup" => {
                a.min_p2p_speedup = Some(parse_f64("--min-p2p-speedup"));
                i += 2;
            }
            "--min-s2m-speedup" => {
                a.min_s2m_speedup = Some(parse_f64("--min-s2m-speedup"));
                i += 2;
            }
            "--min-l2t-speedup" => {
                a.min_l2t_speedup = Some(parse_f64("--min-l2t-speedup"));
                i += 2;
            }
            other => usage(&format!("unknown option {other}")),
        }
    }
    a
}

fn main() {
    let args = parse_args();
    let fast = std::env::var("DASHMM_BENCH_FAST").is_ok_and(|v| v == "1");
    let reps = opbench::default_reps();
    let simd = dashmm_kernels::simd_kernels_active();
    banner(
        "Operator hot paths: per-edge loops vs batched GEMM + SoA particle engine",
        &format!(
            "edges={} leaf={} reps={} fast_mode={} simd_kernels={}",
            args.edges, args.leaf, reps, fast, simd
        ),
    );

    let cases = opbench::run_all(args.edges, reps);
    let particle = opbench::particle_run_all(args.leaf, reps);

    println!(
        "{:<10} {:<10} {:>8} {:>14} {:>14} {:>9}",
        "op", "kernel", "edges", "per-edge ns", "batched ns", "speedup"
    );
    for c in &cases {
        println!(
            "{:<10} {:<10} {:>8} {:>14.1} {:>14.1} {:>8.2}x",
            c.op,
            c.kernel,
            c.edges,
            c.per_edge_ns,
            c.batched_ns,
            c.speedup()
        );
    }
    println!();
    println!(
        "{:<10} {:<10} {:>8} {:>14} {:>14} {:>12} {:>9}",
        "op", "kernel", "pairs", "scalar ns", "batched ns", "per-pair ns", "speedup"
    );
    for c in &particle {
        println!(
            "{:<10} {:<10} {:>8} {:>14.1} {:>14.1} {:>12.3} {:>8.2}x",
            c.op,
            c.kernel,
            c.pairs,
            c.scalar_ns,
            c.batched_ns,
            c.per_pair_ns(),
            c.speedup()
        );
    }

    opbench::write_json(&args.out, &cases, &particle, args.edges, args.leaf, fast)
        .expect("write BENCH_operators.json");
    println!("\nwrote {}", args.out.display());

    let mut failed = false;
    if let Some(min) = args.min_m2l_speedup {
        for c in cases.iter().filter(|c| c.op == "M2L") {
            if c.speedup() < min {
                eprintln!(
                    "GATE FAIL: M2L/{} batched speedup {:.2}x below required {:.2}x",
                    c.kernel,
                    c.speedup(),
                    min
                );
                failed = true;
            } else {
                println!(
                    "GATE OK:   M2L/{} batched speedup {:.2}x >= {:.2}x",
                    c.kernel,
                    c.speedup(),
                    min
                );
            }
        }
    }
    // Particle gates measure the vectorized kernel path; without AVX2+FMA
    // the batched path is the same scalar loop, so skip with a notice.
    for (flag, op) in [
        (args.min_p2p_speedup, "S2T"),
        (args.min_s2m_speedup, "S2M"),
        (args.min_l2t_speedup, "L2T"),
    ] {
        let Some(min) = flag else { continue };
        if !simd {
            println!(
                "GATE SKIP: {op} speedup gate skipped — vectorized kernels \
                 unavailable on this host (no AVX2+FMA)"
            );
            continue;
        }
        for c in particle.iter().filter(|c| c.op == op) {
            if c.speedup() < min {
                eprintln!(
                    "GATE FAIL: {}/{} SoA speedup {:.2}x below required {:.2}x",
                    c.op,
                    c.kernel,
                    c.speedup(),
                    min
                );
                failed = true;
            } else {
                println!(
                    "GATE OK:   {}/{} SoA speedup {:.2}x >= {:.2}x",
                    c.op,
                    c.kernel,
                    c.speedup(),
                    min
                );
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
