//! **Table I** — count, size and min/max in-/out-degree of DAG nodes.
//!
//! Paper workload: 30 M sources and targets, uniform cube, Laplace kernel,
//! threshold 60, 3 digits.  Default here: 200 k points (node counts scale
//! ~linearly with N at fixed threshold; class ratios, degree ranges and the
//! size structure are what the table is about).
//!
//! Run: `cargo run --release -p dashmm-bench --bin table1 [--n N] [--dist cube|sphere]`

use dashmm_bench::{banner, build_workload, socket, Opts};
use dashmm_dag::{DagStats, NodeClass};

/// Paper Table I, for reference printing.
const PAPER: [(&str, u64, &str, u32, u32, u32, u32); 6] = [
    ("S", 2_097_148, "32-1920", 0, 0, 9, 28),
    ("M", 2_396_732, "880", 1, 8, 1, 2),
    ("Is", 2_396_732, "5472", 1, 1, 7, 26),
    ("It", 2_396_672, "25536", 56, 208, 1, 8),
    ("L", 2_396_672, "880", 1, 2, 1, 8),
    ("T", 2_097_152, "40-2400", 9, 28, 0, 0),
];

fn main() {
    let opts = Opts::parse();
    // `--transport socket`: measure the real communication footprint of
    // this DAG's distribution (per-destination parcels/bytes) with one
    // process per locality before printing the node table.
    if socket::maybe_run("table1", &opts, false) {
        return;
    }
    banner(
        "Table I — DAG node classes (count, size, degrees)",
        &format!(
            "workload: {:?} {:?} n={} threshold={}",
            opts.dist, opts.kernel, opts.n, opts.threshold
        ),
    );
    let w = build_workload(&opts, 4);
    w.asm.dag.validate().expect("assembled DAG must validate");
    if w.problem.tree.source().depth() < 3 {
        eprintln!(
            "note: n={} at threshold {} yields a tree of depth {} — too shallow for \
             representative L2 structure; the shape checks below assume a deeper tree \
             (use --n 100000 or more)",
            opts.n,
            opts.threshold,
            w.problem.tree.source().depth()
        );
    }
    let stats = DagStats::compute(&w.asm.dag);

    println!("\n--- this implementation ---");
    print!("{}", stats.node_table());
    println!(
        "total nodes: {}   total edges: {}   critical path: {} edges",
        stats.total_nodes, stats.total_edges, stats.critical_path
    );

    println!("\n--- paper (30 M points, cube, for shape comparison) ---");
    println!("Type        Count     Size [B]        din min/max    dout min/max");
    for (name, count, size, dn, dx, on, ox) in PAPER {
        println!("{name:<6} {count:>10}  {size:>14}  {dn:>7}/{dx:<7}  {on:>7}/{ox:<7}");
    }

    // Shape checks the reproduction should satisfy.
    println!("\n--- shape checks ---");
    let g = |c: NodeClass| stats.nodes[c.index()];
    let m = g(NodeClass::M);
    let is = g(NodeClass::Is);
    let it = g(NodeClass::It);
    let s = g(NodeClass::S);
    let t = g(NodeClass::T);
    let l = g(NodeClass::L);
    check("the six classes have similar counts (within ~2x)", {
        let counts = [s.count, m.count, is.count, it.count, l.count, t.count];
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        max / min < 3.0
    });
    check(
        "S sizes span 32 B to 60 points (paper: 32-1920)",
        s.size_min >= 32 && s.size_max <= 32 * 60,
    );
    // The paper: "The intermediate nodes stand out both in message size and
    // connectivity".  In this realisation the merged slots live on Is (the
    // paper's layout concentrates them on It), so the standout class is an
    // intermediate one either way.
    check(
        "intermediate nodes (Is/It) have the largest payloads",
        is.size_max.max(it.size_max) > m.size_max && is.size_max.max(it.size_max) > s.size_max,
    );
    check(
        "intermediate nodes have the largest connectivity",
        is.din_max.max(it.din_max) > l.din_max && is.dout_max.max(it.dout_max) > m.dout_max,
    );
    check("M out-degree small (M2M + M2I)", m.dout_max <= 3);
    check("T nodes are sinks", t.dout_max == 0);
    check("S nodes are sources", s.din_max == 0);
}

fn check(what: &str, ok: bool) {
    println!("[{}] {}", if ok { "ok" } else { "MISMATCH" }, what);
}
