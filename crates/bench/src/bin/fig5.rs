//! **Figure 5** — per-operator-class utilization fractions `f_k^{(i)}` for
//! the 128-core run, in the paper's three panels:
//!
//! * top: operations up the source tree (`S→M`, `M→M`),
//! * middle: operations bridging the trees (`M→I`, `I→I`, `I→L`),
//! * bottom: operations producing final values (`S→T`, `L→L`, `L→T`).
//!
//! The paper's finding this reproduces: with a priority-oblivious
//! scheduler, the small amount of critical up-sweep work is smeared across
//! most of the execution (up to ~83%), gating the final `L→L`/`L→T` burst
//! and causing the under-utilized window of Figure 4.
//!
//! Run: `cargo run --release -p dashmm-bench --bin fig5 [--n N]`

use dashmm_amt::{utilization_by_class, utilization_total};
use dashmm_bench::report::write_csv;
use dashmm_bench::{banner, build_workload, cost_model, distribute, Opts};
use dashmm_dag::EdgeOp;
use dashmm_sim::{simulate, NetworkModel, SimConfig};

const INTERVALS: usize = 100;

fn main() {
    let opts = Opts::parse();
    banner(
        "Figure 5 — per-class utilization fractions, 128-core run",
        &format!("workload: cube laplace n={} (paper: 30 M)", opts.n),
    );
    let mut w = build_workload(&opts, 4);
    let cost = cost_model(&opts, opts.cost);
    distribute(&w.problem, &mut w.asm, 4);
    let cfg = SimConfig {
        localities: 4,
        cores_per_locality: 32,
        priority: false,
        trace: true,
        levelwise: false,
    };
    let r = simulate(&w.asm.dag, &cost, &NetworkModel::gemini(), &cfg);
    let by = utilization_by_class(&r.trace, INTERVALS, EdgeOp::COUNT);
    let total = utilization_total(&r.trace, INTERVALS);

    let panels: [(&str, &[EdgeOp]); 3] = [
        ("up the source tree", &[EdgeOp::S2M, EdgeOp::M2M]),
        (
            "source tree → target tree",
            &[EdgeOp::M2I, EdgeOp::I2I, EdgeOp::I2L],
        ),
        (
            "final values at targets",
            &[EdgeOp::S2T, EdgeOp::L2L, EdgeOp::L2T],
        ),
    ];
    for (title, ops) in panels {
        println!("\n### {title}");
        print!("  k ");
        for o in ops {
            print!("  {:>8}", o.name());
        }
        println!();
        for k in 0..INTERVALS {
            print!("{k:>3} ");
            for o in ops {
                print!("  {:>8.4}", by[o.index()][k]);
            }
            println!();
        }
    }

    let csv = std::path::Path::new("results/fig5_by_class.csv");
    let mut header = vec!["interval".to_string()];
    for o in EdgeOp::ALL {
        header.push(o.name().to_string());
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let rows = (0..INTERVALS).map(|k| {
        let mut row = vec![k.to_string()];
        for o in EdgeOp::ALL {
            row.push(format!("{:.6}", by[o.index()][k]));
        }
        row
    });
    if write_csv(csv, &header_refs, rows).is_ok() {
        eprintln!("wrote {}", csv.display());
    }

    // Machine-readable summary in the shared run_summary.json schema.
    {
        use dashmm_obs::json::{obj, Value};
        use dashmm_obs::summary::{
            per_op_section, per_op_stats, utilization_section, write_summary,
        };
        let summary = obj(vec![
            (
                "workload",
                obj(vec![
                    ("name", Value::from("fig5")),
                    ("n", Value::from(opts.n)),
                    ("cores", Value::from(128u64)),
                ]),
            ),
            ("utilization", utilization_section(&r.trace, INTERVALS)),
            ("per_op", per_op_section(&per_op_stats(&r.trace))),
        ]);
        let path = std::path::Path::new("results/fig5_run_summary.json");
        if write_summary(path, &summary).is_ok() {
            eprintln!("wrote {}", path.display());
        }
    }

    println!("\n--- shape checks ---");
    // 1. Up-sweep work is smeared late into the run under FIFO scheduling.
    let upsweep_last = last_active(&by[EdgeOp::S2M.index()], &by[EdgeOp::M2M.index()]);
    println!("up-sweep work still executing at {upsweep_last}% of the run");
    check(
        "up-sweep work persists past 40% of the run (paper: ~83%)",
        upsweep_last >= 40,
    );
    // 2. The up-sweep's absolute share is small.
    let up_total: f64 = (0..INTERVALS)
        .map(|k| by[EdgeOp::S2M.index()][k] + by[EdgeOp::M2M.index()][k])
        .sum();
    let all_total: f64 = total.iter().sum();
    println!(
        "up-sweep share of all work: {:.1}%",
        100.0 * up_total / all_total
    );
    check(
        "up-sweep is a small fraction of total work",
        up_total / all_total < 0.2,
    );
    // 3. The final L→L/L→T burst concentrates at the end.
    let l2t = &by[EdgeOp::L2T.index()];
    let late: f64 = l2t[INTERVALS * 3 / 4..].iter().sum();
    let early: f64 = l2t[..INTERVALS / 4].iter().sum();
    check(
        "L→T work concentrates in the last quarter of the run",
        late > early,
    );
    // 4. I→I holds a sustained plateau before the dip (latency well hidden).
    let i2i = &by[EdgeOp::I2I.index()];
    let mid: f64 = i2i[30..60].iter().sum::<f64>() / 30.0;
    check("I→I runs at a sustained utilization mid-run", mid > 0.01);
}

/// Last interval (as a percentage of the run) where either class is active.
fn last_active(a: &[f64], b: &[f64]) -> usize {
    let mut last = 0;
    for k in 0..a.len() {
        if a[k] > 1e-9 || b[k] > 1e-9 {
            last = k;
        }
    }
    last * 100 / a.len()
}

fn check(what: &str, ok: bool) {
    println!("[{}] {}", if ok { "ok" } else { "MISMATCH" }, what);
}
