//! **Figure 3** — strong scaling: evaluation time `t_n` and speedup
//! `t_32/t_n` for core counts 32…4096, for the four configurations
//! cube/sphere × Laplace/Yukawa.
//!
//! The paper ran 60 M (cube) / 42 M (sphere) points on Big Red II
//! (32 cores per node, Gemini interconnect).  Here the explicit DAG is
//! assembled for a host-sized problem and replayed through the
//! discrete-event runtime simulator with a Gemini-like network and a cost
//! model calibrated from traced execution on this host (see DESIGN.md's
//! substitution table).
//!
//! Run: `cargo run --release -p dashmm-bench --bin fig3 [--n N] [--no-coalesce]`

use dashmm_bench::report::write_csv;
use dashmm_bench::{banner, build_workload, cost_model, distribute, Opts};
use dashmm_kernels::KernelKind;
use dashmm_sim::{simulate, NetworkModel, SimConfig};
use dashmm_tree::Distribution;

const CORES_PER_LOCALITY: usize = 32;
const CORE_COUNTS: [usize; 8] = [32, 64, 128, 256, 512, 1024, 2048, 4096];

/// Final scaling efficiencies at 4096 cores reported by the paper (§V-A).
const PAPER_EFF: [(&str, f64); 4] = [
    ("cube laplace", 0.60),
    ("cube yukawa", 0.74),
    ("sphere laplace", 0.62),
    ("sphere yukawa", 0.69),
];

fn main() {
    let base = Opts::parse();
    banner(
        "Figure 3 — strong scaling t_n and speedup t_32/t_n (simulated cluster)",
        &format!(
            "n={} threshold={} network=Gemini-like coalesce={}",
            base.n, base.threshold, !base.no_coalesce
        ),
    );

    let configs = [
        (Distribution::Cube, KernelKind::Laplace, "cube laplace"),
        (Distribution::Cube, KernelKind::Yukawa(1.0), "cube yukawa"),
        (Distribution::Sphere, KernelKind::Laplace, "sphere laplace"),
        (
            Distribution::Sphere,
            KernelKind::Yukawa(1.0),
            "sphere yukawa",
        ),
    ];

    let mut net = NetworkModel::gemini();
    net.coalesce.enabled = !base.no_coalesce;

    let mut final_eff = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for (dist, kernel, label) in configs {
        // Sphere data is denser locally; the paper correspondingly used a
        // smaller sphere problem (42 M vs 60 M).
        let n = if dist == Distribution::Sphere {
            base.n * 7 / 10
        } else {
            base.n
        };
        let opts = Opts {
            n,
            dist,
            kernel,
            ..base.clone()
        };
        eprintln!("[{label}] building DAG (n={n})…");
        let mut w = build_workload(&opts, 1);
        eprintln!("[{label}] preparing cost model…");
        let cost = cost_model(&opts, opts.cost);

        println!("\n### {label} (n={n})");
        println!(
            "{:>6}  {:>12}  {:>9}  {:>10}",
            "cores", "t_n [ms]", "speedup", "efficiency"
        );
        let mut t32 = 0.0;
        let mut last_eff = 0.0;
        for &cores in &CORE_COUNTS {
            let localities = cores / CORES_PER_LOCALITY;
            distribute(&w.problem, &mut w.asm, localities as u32);
            let cfg = SimConfig {
                localities,
                cores_per_locality: CORES_PER_LOCALITY,
                priority: false,
                trace: false,
                levelwise: false,
            };
            let r = simulate(&w.asm.dag, &cost, &net, &cfg);
            if cores == 32 {
                t32 = r.makespan_us;
            }
            let speedup = t32 / r.makespan_us;
            let eff = speedup / (cores / 32) as f64;
            last_eff = eff;
            println!(
                "{:>6}  {:>12.2}  {:>9.2}  {:>9.1}%",
                cores,
                r.makespan_us / 1e3,
                speedup,
                eff * 100.0
            );
            csv_rows.push(vec![
                label.to_string(),
                cores.to_string(),
                format!("{:.3}", r.makespan_us / 1e3),
                format!("{:.4}", speedup),
                format!("{:.4}", eff),
            ]);
        }
        final_eff.push((label, last_eff));
    }
    let csv = std::path::Path::new("results/fig3_strong_scaling.csv");
    if write_csv(
        csv,
        &["config", "cores", "t_ms", "speedup", "efficiency"],
        csv_rows,
    )
    .is_ok()
    {
        eprintln!("wrote {}", csv.display());
    }

    println!("\n--- final efficiency at 4096 cores: this run vs paper ---");
    for ((label, eff), (plabel, peff)) in final_eff.iter().zip(PAPER_EFF.iter()) {
        assert_eq!(label, plabel);
        println!(
            "{label:<16} measured {:>5.1}%   paper {:>5.1}%",
            eff * 100.0,
            peff * 100.0
        );
    }
    println!("\n--- shape checks ---");
    let eff = |l: &str| final_eff.iter().find(|(x, _)| *x == l).unwrap().1;
    check(
        "Yukawa scales better than Laplace (heavier grain size)",
        eff("cube yukawa") > eff("cube laplace") && eff("sphere yukawa") > eff("sphere laplace"),
    );
    check(
        "scaling efficiency degrades by 4096 cores",
        final_eff.iter().all(|(_, e)| *e < 0.98),
    );
    check(
        "all configurations retain real speedup",
        final_eff.iter().all(|(_, e)| *e > 0.05),
    );
}

fn check(what: &str, ok: bool) {
    println!("[{}] {}", if ok { "ok" } else { "MISMATCH" }, what);
}
