//! **§VI estimate** — the paper's proposed fix: binary task priorities.
//!
//! The paper's conclusions do two things: (1) argue that a binary task
//! priority letting the source-tree up-sweep run first would largely
//! eliminate the terminal under-utilization, and (2) *estimate* the payoff
//! from the measured traces: "Given the known widths of the starved region,
//! and under the simple assumption that the utilization during those times
//! would return to its saturated value … the effect is to increase the
//! scaling efficiency by 10% or more."
//!
//! This binary reproduces both:
//!
//! * the **estimate**, exactly as described: the work in the under-utilized
//!   tail of the FIFO run is compressed to the saturated utilization level
//!   and the implied efficiency gain is reported, and
//! * the **direct simulation** with two-level priority scheduling (the
//!   up-sweep edges split into high-priority tasks).  At host-scale DAGs
//!   (hundreds of thousands of points instead of the paper's 30 M) the
//!   high-core-count tail is task-*granularity*-bound, so the directly
//!   simulated gain is smaller than the estimate — the estimate is the
//!   number comparable with the paper.
//!
//! Run: `cargo run --release -p dashmm-bench --bin ablation_priority [--n N]`

use dashmm_amt::utilization_total;
use dashmm_bench::{banner, build_workload, cost_model, distribute, Opts};
use dashmm_kernels::KernelKind;
use dashmm_obs::critical_path;
use dashmm_sim::{simulate, NetworkModel, SimConfig, SimResult};
use dashmm_tree::Distribution;

const CORES_PER_LOCALITY: usize = 32;
const INTERVALS: usize = 100;

fn main() {
    let base = Opts::parse();
    banner(
        "Ablation — FIFO vs binary priority scheduling (paper §VI)",
        &format!("n={} threshold={}", base.n, base.threshold),
    );
    let configs = [
        (Distribution::Cube, KernelKind::Laplace, "cube laplace"),
        (Distribution::Sphere, KernelKind::Laplace, "sphere laplace"),
    ];
    let net = NetworkModel::gemini();
    let mut estimates = Vec::new();
    let mut direct_gains = Vec::new();
    let mut cp_gains = Vec::new();
    for (dist, kernel, label) in configs {
        let opts = Opts {
            dist,
            kernel,
            ..base.clone()
        };
        let mut w = build_workload(&opts, 1);
        let cost = cost_model(&opts, opts.cost);
        println!("\n### {label}");
        println!(
            "{:>6}  {:>12}  {:>12}  {:>11}  {:>14}",
            "cores", "FIFO [ms]", "prio [ms]", "direct gain", "estimated gain"
        );
        for localities in [4usize, 16, 64, 128] {
            distribute(&w.problem, &mut w.asm, localities as u32);
            let mk = |priority, trace| -> SimResult {
                let cfg = SimConfig {
                    localities,
                    cores_per_locality: CORES_PER_LOCALITY,
                    priority,
                    trace,
                    levelwise: false,
                };
                simulate(&w.asm.dag, &cost, &net, &cfg)
            };
            let fifo = mk(false, true);
            let prio = mk(true, true);
            let direct = fifo.makespan_us / prio.makespan_us - 1.0;
            let est = starved_region_estimate(&fifo);
            println!(
                "{:>6}  {:>12.2}  {:>12.2}  {:>10.1}%  {:>13.1}%",
                localities * CORES_PER_LOCALITY,
                fifo.makespan_us / 1e3,
                prio.makespan_us / 1e3,
                direct * 100.0,
                est * 100.0
            );
            if localities >= 64 {
                estimates.push(est);
                direct_gains.push(direct);
                // Observed critical path over the executed DAG: under FIFO
                // the up-sweep/bridge spine near the root finishes late;
                // priority scheduling should compress its wall time.
                if let (Some(f), Some(p)) = (
                    critical_path(&w.asm.dag, &fifo.trace),
                    critical_path(&w.asm.dag, &prio.trace),
                ) {
                    cp_gains.push((f.wall_ns, p.wall_ns));
                    if localities == 128 {
                        println!("  FIFO {}", f.render().replace('\n', "\n  "));
                        println!(
                            "  priority critical-path wall: {:.2} ms (FIFO {:.2} ms)",
                            p.wall_ns as f64 / 1e6,
                            f.wall_ns as f64 / 1e6
                        );
                    }
                }
            }
        }
    }
    println!("\n--- shape checks ---");
    let best_est = estimates.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "best high-core-count estimated gain: {:.1}% (paper estimate: ≥ 10%)",
        best_est * 100.0
    );
    check(
        "the starved-region estimate is material (≥ 5%)",
        best_est >= 0.05,
    );
    check(
        "direct priority scheduling never hurts materially",
        direct_gains.iter().all(|&g| g > -0.05),
    );
    check(
        "estimates grow with core count within each configuration",
        estimates
            .chunks(2)
            .all(|c| c.len() < 2 || c[1] >= c[0] * 0.8),
    );
    let best_cp_gain = cp_gains
        .iter()
        .map(|&(f, p)| f as f64 / p as f64 - 1.0)
        .fold(f64::MIN, f64::max);
    println!(
        "best critical-path wall-time reduction from priority: {:.1}%",
        best_cp_gain * 100.0
    );
    check(
        "priority scheduling shortens the observed critical path",
        best_cp_gain > 0.01,
    );
}

/// The paper's §VI estimate: compress every under-saturated interval's work
/// to the saturated utilization level and report the implied speedup.
fn starved_region_estimate(fifo: &SimResult) -> f64 {
    let u = utilization_total(&fifo.trace, INTERVALS);
    // Saturated value: mean over the middle of the run.
    let f_sat = u[20..60].iter().sum::<f64>() / 40.0;
    if f_sat <= 0.0 {
        return 0.0;
    }
    let dt = fifo.makespan_us / INTERVALS as f64;
    let mut t_new = 0.0;
    for &fk in &u {
        // Work f_k·dt executed at f_sat takes (f_k/f_sat)·dt.
        t_new += dt * (fk / f_sat).min(1.0);
    }
    (fifo.makespan_us / t_new - 1.0).max(0.0)
}

fn check(what: &str, ok: bool) {
    println!("[{}] {}", if ok { "ok" } else { "MISMATCH" }, what);
}
