//! **§VI, extended** — FIFO vs binary priority vs the computed priority
//! lattice.
//!
//! The paper's conclusions argue that a binary task priority letting the
//! source-tree up-sweep run first would largely eliminate the terminal
//! under-utilization, and *estimate* ≥ 10% scaling-efficiency headroom
//! from the measured starved-region widths.  This binary reproduces the
//! estimate and then goes further than the paper's proposal:
//!
//! * **FIFO** — the measured baseline of §V;
//! * **binary** — the paper's two-class fix (up-sweep edges split into
//!   high-priority tasks);
//! * **lattice** — every DAG node ranked by weighted distance to the
//!   critical sink ([`dashmm_dag::PriorityLattice`]), ranks carried
//!   through run queues, coalesced parcels and flush ordering, so upward,
//!   transfer and downward work interleave instead of phasing;
//! * **lattice+feedback** — the same lattice warmed by the FIFO run's
//!   observed per-class critical-path time
//!   ([`dashmm_dag::LatticeHint::from_per_class_ns`]).
//!
//! Three studies feed `results/BENCH_pipeline.json`:
//!
//! 1. utilization troughs at the Figure-4 machine sizes (2/4/16
//!    localities × 32 cores): plateau, terminal-dip width and depth per
//!    schedule;
//! 2. critical-path wall time at high core counts (64/128 localities):
//!    shortening per schedule, per-class on-path time;
//! 3. a *measured* threaded-runtime comparison (real evaluation, span
//!    traces) plus the sim/measured lattice-fingerprint parity check.
//!
//! With `--trough-gate` the pipeline gates become hard failures (nonzero
//! exit), which is how the CI smoke lane enforces them.
//!
//! Run: `cargo run --release -p dashmm-bench --bin ablation_priority [--n N]`

use dashmm_amt::{utilization_total, ObsLevel, TraceSet};
use dashmm_bench::{banner, build_workload, cost_model, distribute, socket, Opts};
use dashmm_core::{DashmmBuilder, LatticeHint, Method, PriorityLattice, SchedPolicy};
use dashmm_dag::Dag;
use dashmm_kernels::{KernelKind, Laplace};
use dashmm_obs::critical_path;
use dashmm_obs::json::{obj, Value};
use dashmm_obs::summary::write_summary;
use dashmm_sim::{simulate, simulate_lattice, CostModel, NetworkModel, SimConfig, SimResult};
use dashmm_tree::Distribution;

const CORES_PER_LOCALITY: usize = 32;
const INTERVALS: usize = 100;

/// Sim critical-path shortening the lattice must beat (the binary
/// schedule's historical gain on this workload is ~6%, paper §VI).
const CP_GATE: f64 = 0.06;

#[derive(Clone, Copy, PartialEq)]
enum Sched {
    Fifo,
    Binary,
    Lattice,
}

fn run_sim(
    dag: &Dag,
    cost: &CostModel,
    net: &NetworkModel,
    localities: usize,
    sched: Sched,
    hint: &LatticeHint,
) -> SimResult {
    let cfg = SimConfig {
        localities,
        cores_per_locality: CORES_PER_LOCALITY,
        priority: sched == Sched::Binary,
        trace: true,
        levelwise: false,
    };
    match sched {
        Sched::Lattice => {
            let lat = PriorityLattice::compute(dag, hint);
            simulate_lattice(dag, cost, net, &cfg, &lat)
        }
        _ => simulate(dag, cost, net, &cfg),
    }
}

/// Mean utilization over the middle of the run (intervals 20–60).
fn plateau(u: &[f64]) -> f64 {
    u[20..60].iter().sum::<f64>() / 40.0
}

/// Relative width of the late under-utilized region: intervals in the
/// second half of the run below 80% of the plateau.
fn dip_width(u: &[f64]) -> f64 {
    let p = plateau(u);
    let width = u[INTERVALS / 2..].iter().filter(|&&f| f < 0.8 * p).count();
    width as f64 / INTERVALS as f64
}

/// Depth of the utilization trough: how far below the plateau the
/// second-half minimum falls (0 = no trough).
fn trough_depth(u: &[f64]) -> f64 {
    let p = plateau(u);
    if p <= 0.0 {
        return 0.0;
    }
    let min = u[INTERVALS / 2..].iter().cloned().fold(f64::MAX, f64::min);
    (1.0 - min / p).max(0.0)
}

fn utilization_of(trace: &TraceSet) -> Vec<f64> {
    utilization_total(trace, INTERVALS)
}

/// The paper's §VI estimate: compress every under-saturated interval's work
/// to the saturated utilization level and report the implied speedup.
fn starved_region_estimate(fifo: &SimResult) -> f64 {
    let u = utilization_of(&fifo.trace);
    let f_sat = plateau(&u);
    if f_sat <= 0.0 {
        return 0.0;
    }
    let dt = fifo.makespan_us / INTERVALS as f64;
    let mut t_new = 0.0;
    for &fk in &u {
        t_new += dt * (fk / f_sat).min(1.0);
    }
    (fifo.makespan_us / t_new - 1.0).max(0.0)
}

fn check(what: &str, ok: bool) -> bool {
    println!("[{}] {}", if ok { "ok" } else { "MISMATCH" }, what);
    ok
}

fn main() {
    let base = Opts::parse();
    if socket::maybe_run("ablation_priority", &base, true) {
        return;
    }
    banner(
        "Ablation — FIFO vs binary priority vs computed priority lattice (paper §VI)",
        &format!("n={} threshold={}", base.n, base.threshold),
    );
    let uniform = LatticeHint::uniform();
    let net = NetworkModel::gemini();
    let mut all_ok = true;

    // ---- Study 1+2: simulated troughs and critical paths ----------------
    let configs = [
        (Distribution::Cube, KernelKind::Laplace, "cube laplace"),
        (Distribution::Sphere, KernelKind::Laplace, "sphere laplace"),
    ];
    let mut estimates = Vec::new();
    let mut trough_rows: Vec<Value> = Vec::new();
    let mut cp_rows: Vec<Value> = Vec::new();
    // (fifo_dip, lattice_dip) per fig4 machine config, first config only.
    let mut fig4_dips: Vec<(f64, f64)> = Vec::new();
    // Best sim CP gain vs FIFO, per schedule.  Collapsed lattice paths
    // (< 3 ops: the tree spine no longer binds the run at all) are the
    // strongest possible outcome but are excluded from the ratio, which
    // would otherwise be meaningless.
    let mut best_cp_gain_binary = f64::MIN;
    let mut best_cp_gain_lattice = f64::MIN;
    let mut best_cp_gain_warm = f64::MIN;
    let mut collapsed_paths = 0usize;
    // Worst lattice makespan gain vs FIFO across high-core configs.
    let mut worst_mk_gain_lattice = f64::MAX;

    for (ci, (dist, kernel, label)) in configs.into_iter().enumerate() {
        let opts = Opts {
            dist,
            kernel,
            ..base.clone()
        };
        let mut w = build_workload(&opts, 1);
        let cost = cost_model(&opts, opts.cost);
        println!("\n### {label}");

        // Figure-4 machine sizes: utilization troughs per schedule.
        println!(
            "{:>6}  {:>9}  {:>22}  {:>22}  {:>22}",
            "cores", "", "FIFO", "binary", "lattice"
        );
        for localities in [2usize, 4, 16] {
            distribute(&w.problem, &mut w.asm, localities as u32);
            let fifo = run_sim(&w.asm.dag, &cost, &net, localities, Sched::Fifo, &uniform);
            let bin = run_sim(&w.asm.dag, &cost, &net, localities, Sched::Binary, &uniform);
            let lat = run_sim(
                &w.asm.dag,
                &cost,
                &net,
                localities,
                Sched::Lattice,
                &uniform,
            );
            let (uf, ub, ul) = (
                utilization_of(&fifo.trace),
                utilization_of(&bin.trace),
                utilization_of(&lat.trace),
            );
            println!(
                "{:>6}  {:>9}  width {:>5.1}% depth {:>4.2}  width {:>5.1}% depth {:>4.2}  width {:>5.1}% depth {:>4.2}",
                localities * CORES_PER_LOCALITY,
                "trough:",
                dip_width(&uf) * 100.0,
                trough_depth(&uf),
                dip_width(&ub) * 100.0,
                trough_depth(&ub),
                dip_width(&ul) * 100.0,
                trough_depth(&ul),
            );
            if ci == 0 {
                fig4_dips.push((dip_width(&uf), dip_width(&ul)));
            }
            trough_rows.push(obj(vec![
                ("config", Value::from(label)),
                ("cores", Value::from(localities * CORES_PER_LOCALITY)),
                ("fifo_plateau", Value::from(plateau(&uf))),
                ("fifo_dip_width", Value::from(dip_width(&uf))),
                ("fifo_trough_depth", Value::from(trough_depth(&uf))),
                ("binary_dip_width", Value::from(dip_width(&ub))),
                ("binary_trough_depth", Value::from(trough_depth(&ub))),
                ("lattice_dip_width", Value::from(dip_width(&ul))),
                ("lattice_trough_depth", Value::from(trough_depth(&ul))),
                ("fifo_makespan_us", Value::from(fifo.makespan_us)),
                ("binary_makespan_us", Value::from(bin.makespan_us)),
                ("lattice_makespan_us", Value::from(lat.makespan_us)),
            ]));
        }

        // High core counts: critical-path shortening per schedule, with the
        // FIFO run's observed per-class on-path time fed back as the hint.
        println!(
            "{:>6}  {:>12}  {:>12}  {:>12}  {:>12}",
            "cores", "FIFO CP [ms]", "binary CP", "lattice CP", "warm CP"
        );
        for localities in [64usize, 128] {
            distribute(&w.problem, &mut w.asm, localities as u32);
            let fifo = run_sim(&w.asm.dag, &cost, &net, localities, Sched::Fifo, &uniform);
            estimates.push(starved_region_estimate(&fifo));
            let bin = run_sim(&w.asm.dag, &cost, &net, localities, Sched::Binary, &uniform);
            let lat = run_sim(
                &w.asm.dag,
                &cost,
                &net,
                localities,
                Sched::Lattice,
                &uniform,
            );
            let (cp_f, cp_b, cp_l) = match (
                critical_path(&w.asm.dag, &fifo.trace),
                critical_path(&w.asm.dag, &bin.trace),
                critical_path(&w.asm.dag, &lat.trace),
            ) {
                (Some(f), Some(b), Some(l)) => (f, b, l),
                _ => {
                    println!("  (no edge-tagged spans at {localities} localities)");
                    continue;
                }
            };
            // Critical-path feedback: weight the lattice by where the FIFO
            // run's path actually spent its time.
            let warm_hint = LatticeHint::from_per_class_ns(&cp_f.per_class_ns);
            let warm = run_sim(
                &w.asm.dag,
                &cost,
                &net,
                localities,
                Sched::Lattice,
                &warm_hint,
            );
            let cp_w = critical_path(&w.asm.dag, &warm.trace).expect("warm trace tagged");
            println!(
                "{:>6}  {:>12.2}  {:>12.2}  {:>12.2}  {:>12.2}   ({} / {} / {} / {} ops)",
                localities * CORES_PER_LOCALITY,
                cp_f.wall_ns as f64 / 1e6,
                cp_b.wall_ns as f64 / 1e6,
                cp_l.wall_ns as f64 / 1e6,
                cp_w.wall_ns as f64 / 1e6,
                cp_f.len(),
                cp_b.len(),
                cp_l.len(),
                cp_w.len(),
            );
            let mut gain = |cp: &dashmm_obs::CriticalPathReport| {
                if cp.len() < 3 {
                    // The walk dead-ended at an independent leaf: the tree
                    // spine no longer bounds the run.
                    collapsed_paths += 1;
                    None
                } else {
                    Some(cp_f.wall_ns as f64 / cp.wall_ns as f64 - 1.0)
                }
            };
            if let Some(g) = gain(&cp_b) {
                best_cp_gain_binary = best_cp_gain_binary.max(g);
            }
            if let Some(g) = gain(&cp_l) {
                best_cp_gain_lattice = best_cp_gain_lattice.max(g);
            }
            if let Some(g) = gain(&cp_w) {
                best_cp_gain_warm = best_cp_gain_warm.max(g);
            }
            worst_mk_gain_lattice =
                worst_mk_gain_lattice.min(fifo.makespan_us / lat.makespan_us - 1.0);
            let per_class = |cp: &dashmm_obs::CriticalPathReport| {
                Value::Arr(cp.per_class_ns.iter().map(|&ns| Value::from(ns)).collect())
            };
            cp_rows.push(obj(vec![
                ("config", Value::from(label)),
                ("cores", Value::from(localities * CORES_PER_LOCALITY)),
                ("fifo_cp_ns", Value::from(cp_f.wall_ns)),
                ("binary_cp_ns", Value::from(cp_b.wall_ns)),
                ("lattice_cp_ns", Value::from(cp_l.wall_ns)),
                ("warm_cp_ns", Value::from(cp_w.wall_ns)),
                ("fifo_per_class_on_path_ns", per_class(&cp_f)),
                ("lattice_per_class_on_path_ns", per_class(&cp_l)),
                ("fifo_makespan_us", Value::from(fifo.makespan_us)),
                ("binary_makespan_us", Value::from(bin.makespan_us)),
                ("lattice_makespan_us", Value::from(lat.makespan_us)),
                ("warm_makespan_us", Value::from(warm.makespan_us)),
            ]));
        }
    }

    // ---- Study 3: measured threaded runtime + fingerprint parity --------
    println!(
        "\n--- measured threaded runtime (2 localities × {} workers) ---",
        base.workers
    );
    let mn = base.n.min(60_000);
    let sources = Distribution::Cube.generate(mn, base.seed);
    let targets = Distribution::Cube.generate(mn, base.seed + 1);
    let charges: Vec<f64> = (0..mn)
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    let measure = |policy: SchedPolicy| {
        let eval = DashmmBuilder::new(Laplace)
            .method(Method::AdvancedFmm)
            .threshold(base.threshold)
            .machine(2, base.workers)
            .obs(ObsLevel::Full)
            .schedule(policy)
            .build(&sources, &charges, &targets);
        // Critical path from the first run's trace (mixing spans from
        // several runs would splice chains across run boundaries); best of
        // 3 wall times to absorb host noise.
        let out = eval.evaluate();
        let cp = critical_path(eval.dag(), &out.report.trace);
        let mut best_ms = out.eval_ms;
        for _ in 0..2 {
            best_ms = best_ms.min(eval.evaluate().eval_ms);
        }
        let sim_fp = PriorityLattice::compute(eval.dag(), &uniform).fingerprint();
        (best_ms, cp, out.lattice_fingerprint, sim_fp)
    };
    let (fifo_ms, fifo_cp, _, _) = measure(SchedPolicy::Fifo);
    let (bin_ms, bin_cp, _, _) = measure(SchedPolicy::Binary);
    let (lat_ms, lat_cp, lat_fp, sim_fp) = measure(SchedPolicy::Lattice(uniform.clone()));
    let cp_ns =
        |cp: &Option<dashmm_obs::CriticalPathReport>| cp.as_ref().map(|c| c.wall_ns).unwrap_or(0);
    println!(
        "measured eval (best of 3): FIFO {fifo_ms:.1} ms, binary {bin_ms:.1} ms, lattice {lat_ms:.1} ms"
    );
    println!(
        "measured critical path: FIFO {:.2} ms, binary {:.2} ms, lattice {:.2} ms",
        cp_ns(&fifo_cp) as f64 / 1e6,
        cp_ns(&bin_cp) as f64 / 1e6,
        cp_ns(&lat_cp) as f64 / 1e6,
    );

    // ---- Gates ----------------------------------------------------------
    println!("\n--- shape checks ---");
    let best_est = estimates.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "best high-core-count estimated gain: {:.1}% (paper estimate: ≥ 10%)",
        best_est * 100.0
    );
    all_ok &= check(
        "the starved-region estimate is material (≥ 5%)",
        best_est >= 0.05,
    );
    println!(
        "best sim critical-path shortening vs FIFO: binary {:.1}%, lattice {:.1}%, lattice+feedback {:.1}% ({} collapsed paths)",
        best_cp_gain_binary * 100.0,
        best_cp_gain_lattice * 100.0,
        best_cp_gain_warm * 100.0,
        collapsed_paths,
    );
    println!(
        "worst lattice makespan gain vs FIFO at ≥ 2048 cores: {:.1}%",
        worst_mk_gain_lattice * 100.0
    );
    all_ok &= check(
        "lattice shortens the sim makespan at every high-core-count config",
        worst_mk_gain_lattice > 0.0,
    );
    all_ok &= check(
        "binary priority shortens the observed critical path",
        best_cp_gain_binary > 0.01,
    );
    // A collapsed path (the walk found no spine at all) is a stronger
    // outcome than any finite shortening.
    let best_lattice = best_cp_gain_lattice.max(best_cp_gain_warm);
    all_ok &= check(
        &format!(
            "lattice critical-path shortening beats the {:.0}% gate",
            CP_GATE * 100.0
        ),
        best_lattice > CP_GATE || collapsed_paths > 0,
    );
    all_ok &= check(
        "lattice shortens the critical path beyond the binary schedule",
        best_lattice > best_cp_gain_binary || collapsed_paths > 0,
    );
    let troughs_ok = fig4_dips.iter().all(|&(f, l)| l <= f + 1e-9)
        && fig4_dips.last().is_some_and(|&(f, l)| l < f);
    all_ok &= check(
        "lattice narrows the fig4 utilization trough (never wider, strictly narrower at 512 cores)",
        troughs_ok,
    );
    let parity = lat_fp == Some(sim_fp);
    all_ok &= check(
        "sim/measured lattice fingerprints agree (SPMD + parity)",
        parity,
    );
    // The measured CP *ordering* is advisory: wall-clock span timings on a
    // shared/oversubscribed host swing far more than any sane tolerance
    // (single-core containers timeslice all workers onto one CPU).  The
    // hard measured gate is that both runs produced a tagged critical path
    // at all; the sim gates above carry the ordering claims.
    println!(
        "[info] measured CP ordering is advisory (host-dependent): lattice/fifo ratio {:.2}",
        if cp_ns(&fifo_cp) > 0 {
            cp_ns(&lat_cp) as f64 / cp_ns(&fifo_cp) as f64
        } else {
            f64::NAN
        }
    );
    all_ok &= check(
        "measured runs produced tagged critical paths (FIFO and lattice)",
        cp_ns(&lat_cp) > 0 && cp_ns(&fifo_cp) > 0,
    );

    // ---- BENCH_pipeline.json -------------------------------------------
    let doc = obj(vec![
        ("bench", Value::from("pipeline")),
        ("n", Value::from(base.n)),
        ("threshold", Value::from(base.threshold)),
        ("intervals", Value::from(INTERVALS)),
        ("troughs", Value::Arr(trough_rows)),
        ("critical_path", Value::Arr(cp_rows)),
        (
            "gains",
            obj(vec![
                ("estimate_best", Value::from(best_est)),
                ("cp_gain_binary", Value::from(best_cp_gain_binary)),
                ("cp_gain_lattice", Value::from(best_cp_gain_lattice)),
                ("cp_gain_lattice_feedback", Value::from(best_cp_gain_warm)),
                ("collapsed_paths", Value::from(collapsed_paths)),
                ("mk_gain_lattice_worst", Value::from(worst_mk_gain_lattice)),
                ("cp_gate", Value::from(CP_GATE)),
            ]),
        ),
        (
            "measured",
            obj(vec![
                ("n", Value::from(mn)),
                ("workers", Value::from(base.workers)),
                ("fifo_eval_ms", Value::from(fifo_ms)),
                ("binary_eval_ms", Value::from(bin_ms)),
                ("lattice_eval_ms", Value::from(lat_ms)),
                ("fifo_cp_ns", Value::from(cp_ns(&fifo_cp))),
                ("binary_cp_ns", Value::from(cp_ns(&bin_cp))),
                ("lattice_cp_ns", Value::from(cp_ns(&lat_cp))),
                (
                    "lattice_fingerprint",
                    Value::from(format!("{:016x}", lat_fp.unwrap_or(0))),
                ),
                ("sim_fingerprint", Value::from(format!("{sim_fp:016x}"))),
                ("fingerprint_parity", Value::from(parity)),
            ]),
        ),
        ("ok", Value::from(all_ok)),
    ]);
    let path = std::path::Path::new("results/BENCH_pipeline.json");
    let _ = std::fs::create_dir_all("results");
    match write_summary(path, &doc) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }

    // `--trough-gate` promotes the pipeline checks to hard failures (CI).
    if base.trough_gate && !all_ok {
        std::process::exit(1);
    }
}
