//! **Figure 4** — total utilization fraction `f_k` over 100 uniform time
//! intervals, for 64-, 128- and 512-core runs (2, 4 and 16 localities of
//! 32 cores), cube data with the Laplace kernel.
//!
//! The paper's observations this binary reproduces: a ramp-up, a plateau
//! near 90% (98% on one locality), and an end-of-run utilization dip whose
//! *relative width grows with the locality count* — the cause of the
//! scaling inefficiency of Figure 3.
//!
//! Run: `cargo run --release -p dashmm-bench --bin fig4 [--n N]`
//!
//! With `--localities L --transport socket` the utilization study is
//! replaced by a *measured* multi-process run: L OS processes evaluate
//! the same workload over loopback TCP, rank 0 verifies the merged
//! potentials against a single-process reference and prints the measured
//! communication next to the simulator's prediction for the same machine.

use dashmm_amt::{utilization_total, ObsLevel};
use dashmm_bench::report::{downsample, sparkline, write_csv};
use dashmm_bench::{banner, build_workload, cost_model, distribute, obsout, socket, Opts};
use dashmm_core::{DashmmBuilder, LatticeHint, Method, PriorityLattice, SchedPolicy};
use dashmm_kernels::Laplace;
use dashmm_sim::{simulate, simulate_lattice, NetworkModel, SimConfig};

const INTERVALS: usize = 100;
const CORES_PER_LOCALITY: usize = 32;

fn main() {
    let opts = Opts::parse();
    if socket::maybe_run("fig4", &opts, true) {
        return;
    }
    banner(
        "Figure 4 — total utilization fraction f_k over 100 intervals",
        &format!("workload: cube laplace n={} (paper: 30 M)", opts.n),
    );
    let mut w = build_workload(&opts, 1);
    let cost = cost_model(&opts, opts.cost);
    let net = NetworkModel::gemini();

    let mut dips = Vec::new();
    let mut lat_dips = Vec::new();
    println!("\n k     n=64    n=128   n=512");
    let mut curves = Vec::new();
    let mut lat_curves = Vec::new();
    for localities in [2usize, 4, 16] {
        distribute(&w.problem, &mut w.asm, localities as u32);
        let cfg = SimConfig {
            localities,
            cores_per_locality: CORES_PER_LOCALITY,
            priority: false,
            trace: true,
            levelwise: false,
        };
        let r = simulate(&w.asm.dag, &cost, &net, &cfg);
        let u = utilization_total(&r.trace, INTERVALS);
        // Same machine under the computed priority lattice (overlay).
        let lattice = PriorityLattice::compute(&w.asm.dag, &LatticeHint::uniform());
        let rl = simulate_lattice(&w.asm.dag, &cost, &net, &cfg, &lattice);
        let ul = utilization_total(&rl.trace, INTERVALS);
        eprintln!(
            "n={}: makespan {:.1} ms (lattice {:.1} ms), mean utilization {:.1}%",
            localities * CORES_PER_LOCALITY,
            r.makespan_us / 1e3,
            rl.makespan_us / 1e3,
            100.0 * u.iter().sum::<f64>() / INTERVALS as f64
        );
        dips.push(dip_width(&u));
        lat_dips.push(dip_width(&ul));
        curves.push(u);
        lat_curves.push(ul);
    }
    for k in 0..INTERVALS {
        println!(
            "{:>3}   {:>6.3}  {:>6.3}  {:>6.3}",
            k, curves[0][k], curves[1][k], curves[2][k]
        );
    }
    for (i, loc) in [64usize, 128, 512].iter().enumerate() {
        println!(
            "n={loc:<4} fifo    {}",
            sparkline(&downsample(&curves[i], 50))
        );
        println!(
            "n={loc:<4} lattice {}",
            sparkline(&downsample(&lat_curves[i], 50))
        );
    }
    let csv = std::path::Path::new("results/fig4_utilization.csv");
    let rows = (0..INTERVALS).map(|k| {
        vec![
            k.to_string(),
            curves[0][k].to_string(),
            curves[1][k].to_string(),
            curves[2][k].to_string(),
            lat_curves[0][k].to_string(),
            lat_curves[1][k].to_string(),
            lat_curves[2][k].to_string(),
        ]
    });
    if write_csv(
        csv,
        &[
            "interval",
            "n64",
            "n128",
            "n512",
            "n64_lattice",
            "n128_lattice",
            "n512_lattice",
        ],
        rows,
    )
    .is_ok()
    {
        eprintln!("wrote {}", csv.display());
    }

    // Single-locality reference (paper: ~98% plateau without networking).
    distribute(&w.problem, &mut w.asm, 1);
    let r1 = simulate(
        &w.asm.dag,
        &cost,
        &NetworkModel::ideal(),
        &SimConfig {
            localities: 1,
            cores_per_locality: 32,
            priority: false,
            trace: true,
            levelwise: false,
        },
    );
    let u1 = utilization_total(&r1.trace, INTERVALS);
    let plateau1 = plateau(&u1);
    println!("\nsingle-locality plateau: {:.1}%", plateau1 * 100.0);

    println!("\n--- shape checks ---");
    for (i, (loc, d)) in [(2, dips[0]), (4, dips[1]), (16, dips[2])]
        .iter()
        .enumerate()
    {
        println!(
            "n={:<4} plateau {:>5.1}%  terminal-dip width {:>4.1}% of run (lattice {:>4.1}%)",
            loc * 32,
            plateau(&curves[i]) * 100.0,
            d * 100.0,
            lat_dips[i] * 100.0,
        );
    }
    let mut ok = true;
    ok &= check(
        "plateaus are high (≥ 75%)",
        curves.iter().all(|u| plateau(u) > 0.75),
    );
    ok &= check(
        "terminal dip width grows with locality count",
        dips[0] <= dips[1] + 0.02 && dips[1] <= dips[2] + 0.02 && dips[2] > dips[0],
    );
    ok &= check(
        "single-locality run is the most efficient",
        plateau1 >= plateau(&curves[2]),
    );
    ok &= check(
        "lattice narrows the terminal trough (never wider, strictly narrower at 512 cores)",
        lat_dips.iter().zip(&dips).all(|(l, f)| l <= &(f + 1e-9)) && lat_dips[2] < dips[2],
    );

    // With span tracing or the trough gate enabled, repeat the trough
    // comparison on the *measured* threaded runtime: same workload, 2
    // localities sharing an in-process transport, FIFO vs lattice.
    if opts.obs.spans() || opts.trough_gate {
        ok &= measured_troughs(&opts);
    }

    // `--trough-gate` promotes the shape checks to hard failures (the CI
    // pipeline lane); plain runs and the tiny-N smoke lanes just print.
    if !ok && opts.trough_gate {
        std::process::exit(1);
    }

    // `--obs counters|full`: run the workload on the real runtime, export
    // the Chrome trace / run_summary.json, report the observed critical
    // path, and self-check the tracing overhead (`--obs-gate` enforces).
    if !obsout::obs_study("fig4", &opts) {
        std::process::exit(1);
    }
}

/// Measured utilization-trough comparison: evaluate the workload on the
/// real runtime (2 localities × `--workers`) under FIFO and under the
/// computed lattice and derive the fig4 terminal-dip width from the span
/// traces.  The dip comparison is advisory — wall-clock trace shapes on a
/// shared/oversubscribed host are not reproducible enough to gate on (the
/// hard gates are the deterministic sim troughs above and the sim/measured
/// lattice-fingerprint parity in `ablation_priority`).  The run still
/// gates on both schedules completing with span traces.
fn measured_troughs(opts: &Opts) -> bool {
    println!(
        "\n--- measured troughs (threaded runtime, 2 localities × {} workers) ---",
        opts.workers
    );
    let mn = opts.n.min(60_000);
    let capped = Opts {
        n: mn,
        ..opts.clone()
    };
    let (sources, targets, charges) = capped.ensembles();
    let run = |policy: SchedPolicy| {
        let eval = DashmmBuilder::new(Laplace)
            .method(Method::AdvancedFmm)
            .threshold(opts.threshold)
            .machine(2, opts.workers)
            .obs(ObsLevel::Full)
            .schedule(policy)
            .build(&sources, &charges, &targets);
        let out = eval.evaluate();
        let u = utilization_total(&out.report.trace, INTERVALS);
        (
            out.eval_ms,
            dip_width(&u),
            plateau(&u),
            out.report.tasks,
            out.report.messages,
        )
    };
    let (fifo_ms, fifo_dip, fifo_plateau, fifo_tasks, fifo_msgs) = run(SchedPolicy::Fifo);
    let (lat_ms, lat_dip, lat_plateau, lat_tasks, lat_msgs) =
        run(SchedPolicy::Lattice(LatticeHint::uniform()));
    println!(
        "fifo    {fifo_ms:>8.1} ms  plateau {:>5.1}%  dip width {:>4.1}%  ({fifo_tasks} tasks, {fifo_msgs} msgs)",
        fifo_plateau * 100.0,
        fifo_dip * 100.0
    );
    println!(
        "lattice {lat_ms:>8.1} ms  plateau {:>5.1}%  dip width {:>4.1}%  ({lat_tasks} tasks, {lat_msgs} msgs)",
        lat_plateau * 100.0,
        lat_dip * 100.0
    );
    println!(
        "[info] measured dip comparison is advisory (host-dependent): lattice {:.1}% vs fifo {:.1}%",
        lat_dip * 100.0,
        fifo_dip * 100.0
    );
    check(
        "both measured schedules completed with span traces",
        fifo_tasks > 0 && lat_tasks > 0 && fifo_plateau > 0.0 && lat_plateau > 0.0,
    )
}

/// Mean utilization over the middle of the run (intervals 20–60).
fn plateau(u: &[f64]) -> f64 {
    u[20..60].iter().sum::<f64>() / 40.0
}

/// Relative width of the late under-utilized region: intervals in the
/// second half of the run below 80% of the plateau.  (The dip is followed
/// by the final L→L/L→T burst — "the amount of available work explodes,
/// the utilization fraction rises sharply, and the pathology ends" — so a
/// trailing scan would miss it.)
fn dip_width(u: &[f64]) -> f64 {
    let p = plateau(u);
    let width = u[INTERVALS / 2..].iter().filter(|&&f| f < 0.8 * p).count();
    width as f64 / INTERVALS as f64
}

fn check(what: &str, ok: bool) -> bool {
    println!("[{}] {}", if ok { "ok" } else { "MISMATCH" }, what);
    ok
}
