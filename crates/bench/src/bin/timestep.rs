//! `timestep` — drive the incremental stepping engine through a leapfrog
//! drift and gate on correctness *and* step cost → `BENCH_timestep.json`.
//!
//! Step 1 builds the resident engine from scratch (that build time is the
//! baseline every later step is compared against).  Each following step
//! kicks a deterministic `--move-frac` subset of the sources along
//! per-point velocities (magnitude `--vel` in units of the domain side,
//! reflecting off the domain walls so the fixed domain stays valid),
//! flips a sprinkling of charges, and calls `ResidentFmm::step`.  Every
//! stepped state is verified against a from-scratch
//! `ResidentFmm::build_in_domain` over the same domain at `--probes`
//! random targets.
//!
//! Gates (each exits non-zero):
//! - any step's max relative error vs the rebuild over `--rel-err`
//!   (default 1e-12),
//! - mean cost of steps 2..N over `--gate-ratio` × the step-1 build time
//!   (default 0.5 — an incremental step must beat half a rebuild).
//!
//! ```text
//! timestep [--n N] [--steps S] [--move-frac F] [--vel V] [--seed S]
//!          [--theta X] [--threshold T] [--probes P] [--gate-ratio R]
//!          [--rel-err E] [--no-verify] [--out PATH]
//! ```

use std::path::PathBuf;
use std::time::Instant;

use dashmm_core::{ResidentConfig, ResidentFmm};
use dashmm_kernels::Laplace;
use dashmm_obs::json::{obj, Value};
use dashmm_obs::refit::{refit_section, StepObs};
use dashmm_obs::summary::write_summary;
use dashmm_obs::LogHistogram;
use dashmm_refit::{ChargeUpdate, Displacement};
use dashmm_sim::{CostModel, StepCounts};
use dashmm_tree::{uniform_cube, BuildParams, Domain, Point3};
use rand::distributions::{Distribution as _, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Args {
    n: usize,
    steps: u32,
    move_frac: f64,
    vel: f64,
    seed: u64,
    theta: f64,
    threshold: usize,
    probes: usize,
    gate_ratio: f64,
    rel_err: f64,
    verify: bool,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut a = Args {
        n: 20_000,
        steps: 8,
        move_frac: 0.05,
        vel: 0.002,
        seed: 42,
        theta: 0.5,
        threshold: 60,
        probes: 64,
        gate_ratio: 0.5,
        rel_err: 1e-12,
        verify: true,
        out: PathBuf::from("BENCH_timestep.json"),
    };
    let argv: Vec<String> = std::env::args().collect();
    let usage = |msg: &str| -> ! {
        eprintln!("error: {msg}");
        eprintln!(
            "usage: {} [--n N] [--steps S] [--move-frac F] [--vel V] [--seed S] \
             [--theta X] [--threshold T] [--probes P] [--gate-ratio R] \
             [--rel-err E] [--no-verify] [--out PATH]",
            argv.first().map(String::as_str).unwrap_or("timestep")
        );
        std::process::exit(2);
    };
    let mut i = 1;
    while i < argv.len() {
        let value = |flag: &str| -> &str {
            match argv.get(i + 1) {
                Some(v) => v,
                None => usage(&format!("{flag} expects a value")),
            }
        };
        macro_rules! num {
            ($flag:expr) => {
                value($flag)
                    .parse()
                    .unwrap_or_else(|_| usage(concat!($flag, " expects a number")))
            };
        }
        match argv[i].as_str() {
            "--n" => a.n = num!("--n"),
            "--steps" => a.steps = num!("--steps"),
            "--move-frac" => a.move_frac = num!("--move-frac"),
            "--vel" => a.vel = num!("--vel"),
            "--seed" => a.seed = num!("--seed"),
            "--theta" => a.theta = num!("--theta"),
            "--threshold" => a.threshold = num!("--threshold"),
            "--probes" => a.probes = num!("--probes"),
            "--gate-ratio" => a.gate_ratio = num!("--gate-ratio"),
            "--rel-err" => a.rel_err = num!("--rel-err"),
            "--out" => a.out = PathBuf::from(value("--out")),
            "--no-verify" => {
                a.verify = false;
                i += 1;
                continue;
            }
            other => usage(&format!("unknown flag {other}")),
        }
        i += 2;
    }
    if a.n == 0 || a.steps == 0 {
        usage("--n and --steps must be positive");
    }
    if !(0.0..=1.0).contains(&a.move_frac) {
        usage("--move-frac must be in [0, 1]");
    }
    a
}

fn resident_cfg(args: &Args) -> ResidentConfig {
    ResidentConfig {
        theta: args.theta,
        build: BuildParams {
            threshold: args.threshold,
            ..BuildParams::default()
        },
        ..ResidentConfig::default()
    }
}

/// Max relative error of the stepped engine vs a from-scratch rebuild in
/// the same domain, over the probe targets.
fn verify_against_rebuild(engine: &ResidentFmm<Laplace>, args: &Args, probes: &[[f64; 3]]) -> f64 {
    let fresh = ResidentFmm::build_in_domain(
        Laplace,
        &engine.current_sources(),
        &engine.current_charges(),
        resident_cfg(args),
        *engine.domain(),
    );
    let mut got = vec![0.0; probes.len()];
    let mut want = vec![0.0; probes.len()];
    engine.evaluate(probes, &mut got);
    fresh.evaluate(probes, &mut want);
    got.iter()
        .zip(&want)
        .map(|(g, w)| (g - w).abs() / w.abs().max(1.0))
        .fold(0.0, f64::max)
}

fn main() {
    let args = parse_args();
    let model = CostModel::paper_table2();

    let sources = uniform_cube(args.n, args.seed);
    let charges: Vec<f64> = (0..args.n)
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    // Fixed padded domain: the drift reflects off its walls, so every
    // refit and every verification rebuild bins into the same grid.
    let domain = Domain::containing(&[&sources], 0.05);

    // Deterministic per-point velocities, |v| ~ vel × side per step.
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x7665_6c6f);
    let u = Uniform::new_inclusive(-1.0, 1.0);
    let speed = args.vel * domain.side();
    let mut vel: Vec<[f64; 3]> = (0..args.n)
        .map(|_| {
            let v = [u.sample(&mut rng), u.sample(&mut rng), u.sample(&mut rng)];
            let norm = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt().max(1e-12);
            [
                v[0] / norm * speed,
                v[1] / norm * speed,
                v[2] / norm * speed,
            ]
        })
        .collect();
    let mut pos = sources.clone();
    let probes = uniform_cube(args.probes.max(1), args.seed ^ 0x7072_6f62)
        .iter()
        .map(|p| [p.x, p.y, p.z])
        .collect::<Vec<_>>();

    eprintln!(
        "timestep: building resident engine ({} points, theta {}, threshold {})",
        args.n, args.theta, args.threshold
    );
    let t0 = Instant::now();
    let mut engine =
        ResidentFmm::build_in_domain(Laplace, &sources, &charges, resident_cfg(&args), domain);
    let step1_us = t0.elapsed().as_secs_f64() * 1e6;
    eprintln!(
        "timestep: step 1 (build) {:.0}us, {} boxes, depth {}",
        step1_us,
        engine.num_nodes(),
        engine.depth()
    );
    let mut rows = vec![StepObs {
        step: 1,
        total_us: step1_us,
        dirty_fraction: 1.0,
        verify_rel_err: f64::NAN,
        ..StepObs::default()
    }];

    // Every `stride`-th point moves each step, with the active subset
    // rotating so all points eventually drift.
    let stride = if args.move_frac > 0.0 {
        ((1.0 / args.move_frac).round() as usize).max(1)
    } else {
        usize::MAX
    };
    let lo = domain.center() - Point3::new(domain.half(), domain.half(), domain.half());
    let hi = domain.center() + Point3::new(domain.half(), domain.half(), domain.half());

    // Streaming per-phase histograms over steps 2..N (step 1 is a full
    // build, a different regime, and would skew every percentile).
    let hist_refit = LogHistogram::new();
    let hist_recompute = LogHistogram::new();
    let hist_lists = LogHistogram::new();
    let hist_dag = LogHistogram::new();
    let hist_total = LogHistogram::new();
    let mut reused_edges_total = 0u64;
    let mut invalidated_edges_total = 0u64;

    let mut worst: Option<String> = None;
    for step in 2..=args.steps {
        // Leapfrog drift of the active subset, reflecting at the walls.
        let mut moves: Vec<Displacement> = Vec::new();
        if stride != usize::MAX {
            for i in ((step as usize - 2) % stride..args.n).step_by(stride) {
                let v = &mut vel[i];
                let p = &mut pos[i];
                let mut delta = [0.0; 3];
                let (lo, hi) = ([lo.x, lo.y, lo.z], [hi.x, hi.y, hi.z]);
                let cur = [p.x, p.y, p.z];
                for ax in 0..3 {
                    let mut next = cur[ax] + v[ax];
                    if next < lo[ax] || next > hi[ax] {
                        v[ax] = -v[ax];
                        next = (cur[ax] + v[ax]).clamp(lo[ax], hi[ax]);
                    }
                    delta[ax] = next - cur[ax];
                }
                p.x += delta[0];
                p.y += delta[1];
                p.z += delta[2];
                moves.push(Displacement {
                    index: i as u32,
                    delta,
                });
            }
        }
        // Flip a sprinkling of charges, rotating with the step.
        let updates: Vec<ChargeUpdate> = (((step as usize) * 37) % 101..args.n)
            .step_by(101)
            .map(|i| ChargeUpdate {
                index: i as u32,
                charge: if (i + step as usize).is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                },
            })
            .collect();

        let t = Instant::now();
        let report = engine.step(&moves, &updates);
        let total_us = t.elapsed().as_secs_f64() * 1e6;
        hist_refit.record_us(report.refit_us);
        hist_recompute.record_us(report.recompute_us);
        hist_lists.record_us(report.lists_us);
        hist_dag.record_us(report.dag_us);
        hist_total.record_us(total_us);
        reused_edges_total += report.dag.reused_edges;
        invalidated_edges_total += report.dag.invalidated_edges;

        let verify_rel_err = if args.verify {
            let e = verify_against_rebuild(&engine, &args, &probes);
            if e > args.rel_err && worst.is_none() {
                worst = Some(format!(
                    "step {step}: rel err {e:.3e} over the {:.1e} bound",
                    args.rel_err
                ));
            }
            e
        } else {
            f64::NAN
        };

        let predicted_us = model.predicted_step_us(&StepCounts::from_invalidated(
            report.dag.invalidated_by_op,
            report.dag.invalidated_nodes as u64,
        ));
        eprintln!(
            "timestep: step {step} {:.0}us (refit {:.0} recompute {:.0} lists {:.0} dag {:.0}) \
             dirty {:.1}% reused {} edges{}",
            total_us,
            report.refit_us,
            report.recompute_us,
            report.lists_us,
            report.dag_us,
            report.dirty_fraction() * 100.0,
            report.dag.reused_edges,
            if args.verify {
                format!(" err {verify_rel_err:.1e}")
            } else {
                String::new()
            }
        );
        rows.push(StepObs {
            step,
            refit_us: report.refit_us,
            recompute_us: report.recompute_us,
            lists_us: report.lists_us,
            dag_us: report.dag_us,
            total_us,
            predicted_us,
            dirty_fraction: report.dirty_fraction(),
            moved: report.refit.moved as u64,
            rebinned: report.refit.rebinned as u64,
            splits: report.refit.splits as u64,
            merges: report.refit.merges as u64,
            lists_recomputed: report.lists_recomputed as u64,
            dag_rebuilt: report.dag_rebuilt,
            invalidated_edges: report.dag.invalidated_edges,
            reused_edges: report.dag.reused_edges,
            verify_rel_err,
        });
    }

    let section = refit_section(&rows);
    let mean_step_us = section
        .get("mean_step_us")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    let ratio = section
        .get("mean_step_over_step1")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    let max_err = section
        .get("max_verify_rel_err")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);

    println!("== incremental time-stepping ==");
    println!(
        "step 1 (build): {:.0}us; mean step 2..{}: {:.0}us (ratio {:.3}, gate {})",
        step1_us, args.steps, mean_step_us, ratio, args.gate_ratio
    );
    if args.verify {
        println!("max rel err vs rebuild: {max_err:.3e}");
    }

    let summary = obj(vec![
        (
            "params",
            obj(vec![
                ("n", Value::from(args.n)),
                ("steps", Value::from(u64::from(args.steps))),
                ("move_frac", Value::from(args.move_frac)),
                ("vel", Value::from(args.vel)),
                ("seed", Value::from(args.seed)),
                ("theta", Value::from(args.theta)),
                ("threshold", Value::from(args.threshold)),
                ("probes", Value::from(args.probes)),
                ("gate_ratio", Value::from(args.gate_ratio)),
                ("verified", Value::from(args.verify)),
            ]),
        ),
        ("timestep", section),
        (
            "telemetry",
            obj(vec![
                (
                    "step_phases",
                    obj(vec![
                        ("refit_us", hist_refit.snapshot().to_json()),
                        ("recompute_us", hist_recompute.snapshot().to_json()),
                        ("lists_us", hist_lists.snapshot().to_json()),
                        ("dag_us", hist_dag.snapshot().to_json()),
                        ("total_us", hist_total.snapshot().to_json()),
                    ]),
                ),
                ("reused_edges", Value::from(reused_edges_total)),
                ("invalidated_edges", Value::from(invalidated_edges_total)),
                (
                    "reuse_ratio",
                    Value::from(if reused_edges_total + invalidated_edges_total > 0 {
                        reused_edges_total as f64
                            / (reused_edges_total + invalidated_edges_total) as f64
                    } else {
                        0.0
                    }),
                ),
            ]),
        ),
    ]);
    if let Err(e) = write_summary(&args.out, &summary) {
        eprintln!("timestep: failed to write {}: {e}", args.out.display());
        std::process::exit(1);
    }
    eprintln!("timestep: wrote {}", args.out.display());

    let mut failed = false;
    if let Some(w) = worst {
        eprintln!("FAIL: {w}");
        failed = true;
    }
    if args.steps > 1 && mean_step_us > args.gate_ratio * step1_us {
        eprintln!(
            "FAIL: mean step cost {mean_step_us:.0}us over {} x step-1 {step1_us:.0}us",
            args.gate_ratio
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
