//! **Ablation** — distribution policies.
//!
//! The paper (§IV) lets the *distribution policy* decide where the nodes of
//! the implicit DAG live, with the single constraint that leaf data stays
//! with its owners; the evaluated policy additionally places incoming
//! intermediate nodes to minimise communication.  This ablation compares
//! the policies shipped in `dashmm-dag` on remote traffic, load balance,
//! and simulated makespan — including the instructive negative result that
//! communication-oblivious work balancing loses to owner pinning.
//!
//! Run: `cargo run --release -p dashmm-bench --bin ablation_policy [--n N]`

use dashmm_bench::{banner, build_workload, cost_model, Opts};
use dashmm_core::block_owner;
use dashmm_dag::{
    BlockPolicy, DistributionPolicy, FmmPolicy, ItPlacement, LoadBalancedPolicy, NodeClass,
};
use dashmm_sim::{simulate, NetworkModel, SimConfig};

const LOCALITIES: usize = 16;

fn main() {
    let opts = Opts::parse();
    banner(
        "Ablation — distribution policies (16 localities × 32 cores)",
        &format!("workload: {:?} {:?} n={}", opts.dist, opts.kernel, opts.n),
    );
    let mut w = build_workload(&opts, 1);
    let cost = cost_model(&opts, opts.cost);
    let net = NetworkModel::gemini();

    let src_n = w.problem.tree.source().points().len();
    let tgt_n = w.problem.tree.target().points().len();
    let problem = &w.problem;
    let owner = |class: NodeClass, box_id: u32| -> u32 {
        match class {
            NodeClass::S | NodeClass::M | NodeClass::Is => block_owner(
                problem.tree.source().node(box_id).first,
                src_n,
                LOCALITIES as u32,
            ),
            _ => block_owner(
                problem.tree.target().node(box_id).first,
                tgt_n,
                LOCALITIES as u32,
            ),
        }
    };

    let policies: Vec<(&str, Box<dyn DistributionPolicy>)> = vec![
        ("block (owner)", Box::new(BlockPolicy)),
        (
            "fmm/target-it",
            Box::new(FmmPolicy {
                it_placement: ItPlacement::TargetOwner,
            }),
        ),
        ("fmm/majority-it", Box::new(FmmPolicy::default())),
        ("load-balanced", Box::new(LoadBalancedPolicy)),
    ];

    println!(
        "\n{:<16} {:>12} {:>14} {:>12} {:>12}",
        "policy", "remote edges", "remote MB", "t [ms]", "imbalance"
    );
    let mut results = Vec::new();
    for (name, policy) in policies {
        policy.assign(&mut w.asm.dag, LOCALITIES as u32, &owner);
        let remote = w.asm.dag.remote_edge_count();
        let mb = w.asm.dag.remote_bytes() as f64 / 1e6;
        let cfg = SimConfig {
            localities: LOCALITIES,
            cores_per_locality: 32,
            priority: false,
            trace: false,
            levelwise: false,
        };
        let r = simulate(&w.asm.dag, &cost, &net, &cfg);
        let max_busy = r.busy_us.iter().cloned().fold(0.0f64, f64::max);
        let mean_busy: f64 = r.busy_us.iter().sum::<f64>() / LOCALITIES as f64;
        let imbalance = max_busy / mean_busy - 1.0;
        println!(
            "{:<16} {:>12} {:>14.1} {:>12.2} {:>11.1}%",
            name,
            remote,
            mb,
            r.makespan_us / 1e3,
            imbalance * 100.0
        );
        results.push((name, remote, mb, r.makespan_us, imbalance));
    }

    println!("\n--- shape checks ---");
    let get = |n: &str| *results.iter().find(|(x, ..)| *x == n).unwrap();
    let majority = get("fmm/majority-it");
    let target = get("fmm/target-it");
    check(
        "communication-aware It placement reduces remote bytes",
        majority.2 <= target.2 * 1.001,
    );
    let block = get("block (owner)");
    check(
        "every policy keeps the makespan within 2x of the best",
        results.iter().all(|r| r.3 <= 2.0 * block.3.min(majority.3)),
    );
    // The instructive negative result: balancing task *degrees* without
    // communication awareness breaks the spatial co-location of source and
    // target blocks, multiplying remote traffic — which is exactly why the
    // paper's policy pins nodes to their data owners and only then
    // optimises placement at the margins.
    let lb = get("load-balanced");
    check(
        "naive degree balancing pays more communication than owner pinning",
        lb.2 > majority.2,
    );
    check(
        "owner pinning beats naive balancing end to end",
        majority.3 <= lb.3,
    );
}

fn check(what: &str, ok: bool) {
    println!("[{}] {}", if ok { "ok" } else { "MISMATCH" }, what);
}
