//! **Table II** — count, message size, and average execution time of DAG
//! edges, by operator class.
//!
//! Edge counts and sizes come from the assembled explicit DAG; execution
//! times are *measured* on this host by running a traced evaluation on the
//! real AMT runtime (exactly how the paper collected its timings, §V-B) and
//! averaging per class.
//!
//! Run: `cargo run --release -p dashmm-bench --bin table2 [--n N]`

use dashmm_bench::{banner, build_workload, obsout, Opts};
use dashmm_core::{per_op_avg_us, DashmmBuilder, Method};
use dashmm_dag::{DagStats, EdgeOp};
use dashmm_kernels::{KernelKind, Laplace, Yukawa};

/// Paper Table II (count, size, tavg µs at 128 cores).
const PAPER: [(&str, u64, &str, f64); 8] = [
    ("S→T", 55_742_860, "32-1920", 1.89),
    ("S→M", 2_097_148, "880", 10.9),
    ("M→M", 2_396_668, "880", 4.60),
    ("M→I", 2_396_732, "5280", 29.6),
    ("I→I", 59_992_216, "912-2736", 1.75),
    ("I→L", 2_396_736, "880", 38.4),
    ("L→L", 2_396_672, "880", 4.45),
    ("L→T", 2_097_152, "880", 13.5),
];

fn main() {
    let opts = Opts::parse();
    banner(
        "Table II — DAG edge classes (count, size, measured t_avg)",
        &format!(
            "workload: {:?} {:?} n={} threshold={}",
            opts.dist, opts.kernel, opts.n, opts.threshold
        ),
    );
    let w = build_workload(&opts, 1);
    let stats = DagStats::compute(&w.asm.dag);

    // Measure per-operator times with a traced single-worker evaluation of
    // a smaller instance (time grows linearly; averages converge fast).
    let measure_n = opts.n.min(50_000);
    let m_opts = Opts {
        n: measure_n,
        ..opts.clone()
    };
    let (sources, targets, charges) = m_opts.ensembles();
    eprintln!("measuring operator times on n={measure_n} (single worker, traced)…");
    let out = match opts.kernel {
        KernelKind::Laplace => DashmmBuilder::new(Laplace)
            .method(Method::AdvancedFmm)
            .threshold(opts.threshold)
            .machine(1, 1)
            .tracing(true)
            .build(&sources, &charges, &targets)
            .evaluate(),
        KernelKind::Yukawa(lam) => DashmmBuilder::new(Yukawa::new(lam))
            .method(Method::AdvancedFmm)
            .threshold(opts.threshold)
            .machine(1, 1)
            .tracing(true)
            .build(&sources, &charges, &targets)
            .evaluate(),
    };
    let avg = per_op_avg_us(&out.report.trace);
    obsout::write_measured_summary("table2", &m_opts, &out);

    println!("\n--- this implementation ---");
    print!("{}", stats.edge_table(Some(&avg)));

    println!("\n--- paper (30 M points, cube Laplace, 128 cores) ---");
    println!("Type     Count       Size [B]        t_avg [µs]");
    for (name, count, size, t) in PAPER {
        println!("{name:<6} {count:>10}  {size:>14}  {t:>10.3}");
    }

    println!("\n--- shape checks ---");
    let e = |o: EdgeOp| stats.edges[o.index()];
    check(
        "I→I is the single largest edge class (paper §V-B)",
        EdgeOp::ALL
            .iter()
            .all(|&o| e(EdgeOp::I2I).count >= e(o).count),
    );
    check("S→T is the second most numerous class", {
        EdgeOp::ALL
            .iter()
            .filter(|&&o| o != EdgeOp::I2I)
            .all(|&o| e(EdgeOp::S2T).count >= e(o).count)
    });
    check(
        "I→I has the cheapest per-edge time of the expansion operators",
        avg[EdgeOp::I2I.index()] < avg[EdgeOp::M2I.index()]
            && avg[EdgeOp::I2I.index()] < avg[EdgeOp::I2L.index()],
    );
    check(
        "M→I and I→L are the heaviest operators",
        avg[EdgeOp::M2I.index()] > avg[EdgeOp::M2M.index()]
            && avg[EdgeOp::I2L.index()] > avg[EdgeOp::L2L.index()],
    );
    check(
        "M→M/L→L cheaper than S→M/L→T (matrix apply vs kernel evaluations)",
        avg[EdgeOp::M2M.index()] < avg[EdgeOp::S2M.index()]
            && avg[EdgeOp::L2L.index()] < avg[EdgeOp::L2T.index()],
    );
}

fn check(what: &str, ok: bool) {
    println!("[{}] {}", if ok { "ok" } else { "MISMATCH" }, what);
}
