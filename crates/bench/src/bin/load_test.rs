//! `load_test` — hammer the resident evaluation server and gate on
//! latency, correctness and shed counts → `BENCH_service.json`.
//!
//! Spawns a `serve` child (or targets `--addr`), then drives it with
//! `--clients` concurrent connections issuing `--requests` total
//! evaluation requests of `--batch` targets each.  Every `Ok` response is
//! verified element-wise against a locally built reference engine (bit-
//! identical workload, see `dashmm_bench::service`), so the server's
//! request aggregation across clients must reproduce single-shot results.
//!
//! With `--stats-interval-ms M` a poller thread drives the server's
//! stats endpoint every `M` milliseconds during the run, checks the
//! snapshot's interval-window arithmetic against the cumulative
//! counters (two polls must difference exactly), and lands the final
//! snapshot in `BENCH_service.json` under `"server_stats"`.
//! `--overhead-gate R` runs the whole load twice against fresh servers
//! — once without polling, once polling at `--stats-interval-ms` — and
//! fails unless the polled pass's p99 stays under
//! `max(R × unpolled p99, unpolled p99 + --overhead-grace-us)`.
//!
//! Gates (each exits non-zero):
//! - any response failing the `--rel-err` bound (default 1e-12),
//! - any shed or errored request (unless `--allow-shed`),
//! - `--p99-gate-us X`: client-observed p99 latency must stay under `X`,
//! - window arithmetic that fails to reconcile across stats polls,
//! - `--overhead-gate R`: the telemetry-overhead bound above,
//! - `--budget-s S`: a watchdog aborts a hung run after `S` seconds.
//!
//! ```text
//! load_test [--clients N] [--requests M] [--batch B] [--tenants T]
//!           [--addr HOST:PORT | --points N --seed S --theta X ...]
//!           [--tile N] [--workers W] [--budget-s S] [--p99-gate-us X]
//!           [--rel-err E] [--allow-shed] [--no-verify] [--out PATH]
//!           [--stats-interval-ms M] [--overhead-gate R]
//!           [--overhead-grace-us G]
//! ```

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Instant;

use dashmm_bench::service::{parse_ready_line, ServiceWorkload};
use dashmm_core::ResidentFmm;
use dashmm_kernels::Laplace;
use dashmm_net::service::{EvalClient, RespStatus};
use dashmm_obs::json::{obj, Value};
use dashmm_obs::summary::write_summary;
use dashmm_obs::LatencySummary;

struct Args {
    workload: ServiceWorkload,
    clients: u32,
    requests: u32,
    batch: usize,
    tenants: u32,
    addr: Option<String>,
    tile: usize,
    workers: usize,
    budget_s: u64,
    p99_gate_us: Option<f64>,
    rel_err: f64,
    allow_shed: bool,
    verify: bool,
    out: PathBuf,
    stats_interval_ms: u64,
    overhead_gate: Option<f64>,
    overhead_grace_us: f64,
}

fn parse_args() -> Args {
    let mut a = Args {
        workload: ServiceWorkload::default(),
        clients: 64,
        requests: 2000,
        batch: 16,
        tenants: 8,
        addr: None,
        tile: 1024,
        workers: 2,
        budget_s: 60,
        p99_gate_us: None,
        rel_err: 1e-12,
        allow_shed: false,
        verify: true,
        out: PathBuf::from("BENCH_service.json"),
        stats_interval_ms: 0,
        overhead_gate: None,
        overhead_grace_us: 1000.0,
    };
    let argv: Vec<String> = std::env::args().collect();
    let usage = |msg: &str| -> ! {
        eprintln!("error: {msg}");
        eprintln!(
            "usage: {} [--clients N] [--requests M] [--batch B] [--tenants T] \
             [--addr HOST:PORT] [--points N] [--seed S] [--theta X] [--threshold T] \
             [--tile N] [--workers W] [--budget-s S] [--p99-gate-us X] \
             [--rel-err E] [--allow-shed] [--no-verify] [--out PATH] \
             [--stats-interval-ms M] [--overhead-gate R] [--overhead-grace-us G]",
            argv.first().map(String::as_str).unwrap_or("load_test")
        );
        std::process::exit(2);
    };
    let mut i = 1;
    while i < argv.len() {
        let value = |flag: &str| -> &str {
            match argv.get(i + 1) {
                Some(v) => v,
                None => usage(&format!("{flag} expects a value")),
            }
        };
        macro_rules! num {
            ($flag:expr) => {
                value($flag)
                    .parse()
                    .unwrap_or_else(|_| usage(concat!($flag, " expects a number")))
            };
        }
        match argv[i].as_str() {
            "--clients" => a.clients = num!("--clients"),
            "--requests" => a.requests = num!("--requests"),
            "--batch" => a.batch = num!("--batch"),
            "--tenants" => a.tenants = num!("--tenants"),
            "--addr" => a.addr = Some(value("--addr").to_string()),
            "--points" => a.workload.points = num!("--points"),
            "--seed" => a.workload.seed = num!("--seed"),
            "--theta" => a.workload.theta = num!("--theta"),
            "--threshold" => a.workload.threshold = num!("--threshold"),
            "--tile" => a.tile = num!("--tile"),
            "--workers" => a.workers = num!("--workers"),
            "--budget-s" => a.budget_s = num!("--budget-s"),
            "--p99-gate-us" => a.p99_gate_us = Some(num!("--p99-gate-us")),
            "--rel-err" => a.rel_err = num!("--rel-err"),
            "--out" => a.out = PathBuf::from(value("--out")),
            "--stats-interval-ms" => a.stats_interval_ms = num!("--stats-interval-ms"),
            "--overhead-gate" => a.overhead_gate = Some(num!("--overhead-gate")),
            "--overhead-grace-us" => a.overhead_grace_us = num!("--overhead-grace-us"),
            "--allow-shed" => {
                a.allow_shed = true;
                i += 1;
                continue;
            }
            "--no-verify" => {
                a.verify = false;
                i += 1;
                continue;
            }
            other => usage(&format!("unknown flag {other}")),
        }
        i += 2;
    }
    if a.clients == 0 || a.tenants == 0 || a.batch == 0 {
        usage("--clients, --tenants and --batch must be positive");
    }
    if a.overhead_gate.is_some() && a.addr.is_some() {
        usage("--overhead-gate needs fresh spawned servers; drop --addr");
    }
    a
}

/// Start the sibling `serve` binary and parse its ready line.
fn spawn_server(args: &Args) -> (Child, String) {
    let serve = std::env::current_exe()
        .expect("own path")
        .with_file_name("serve");
    let mut child = Command::new(&serve)
        .args([
            "--points",
            &args.workload.points.to_string(),
            "--seed",
            &args.workload.seed.to_string(),
            "--theta",
            &args.workload.theta.to_string(),
            "--threshold",
            &args.workload.threshold.to_string(),
            "--tile",
            &args.tile.to_string(),
            "--workers",
            &args.workers.to_string(),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| {
            eprintln!("load_test: failed to spawn {}: {e}", serve.display());
            std::process::exit(1);
        });
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    for line in &mut lines {
        let line = line.unwrap_or_default();
        if let Some(port) = parse_ready_line(&line) {
            // Drain any further child stdout in the background so the
            // pipe never fills.
            std::thread::spawn(move || for _ in lines {});
            return (child, format!("127.0.0.1:{port}"));
        }
    }
    let _ = child.kill();
    eprintln!("load_test: server exited before its ready line");
    std::process::exit(1);
}

#[derive(Default)]
struct ClientOutcome {
    latencies_us: Vec<f64>,
    completed: u64,
    shed: u64,
    errors: u64,
    max_rel_err: f64,
    worst: Option<String>,
}

#[allow(clippy::too_many_arguments)]
fn run_client(
    id: u32,
    n_requests: u32,
    addr: &str,
    args: &Args,
    reference: Option<&ResidentFmm<Laplace>>,
) -> ClientOutcome {
    let mut out = ClientOutcome::default();
    let mut client = match EvalClient::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            out.errors = u64::from(n_requests);
            out.worst = Some(format!("client {id}: connect failed: {e}"));
            return out;
        }
    };
    let tenant = id % args.tenants;
    let mut expect = vec![0.0f64; args.batch];
    for req in 0..n_requests {
        let targets = args.workload.request_targets(id, req, args.batch);
        let t0 = Instant::now();
        let resp = match client.eval(tenant, &targets) {
            Ok(r) => r,
            Err(e) => {
                out.errors += 1;
                out.worst
                    .get_or_insert_with(|| format!("client {id} req {req}: io error: {e}"));
                return out;
            }
        };
        out.latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
        match resp.status {
            RespStatus::Ok => {
                out.completed += 1;
                if let Some(fmm) = reference {
                    fmm.evaluate(&targets, &mut expect);
                    for (k, (&got, &want)) in resp.potentials.iter().zip(&expect).enumerate() {
                        let err = (got - want).abs() / want.abs().max(1.0);
                        if err > out.max_rel_err {
                            out.max_rel_err = err;
                            if err > args.rel_err {
                                out.worst = Some(format!(
                                    "client {id} req {req} target {k}: got {got}, want {want} (rel err {err:.3e})"
                                ));
                            }
                        }
                    }
                }
            }
            RespStatus::Shed => out.shed += 1,
            status => {
                out.errors += 1;
                out.worst
                    .get_or_insert_with(|| format!("client {id} req {req}: {status:?}"));
            }
        }
    }
    let _ = client.close();
    out
}

/// What the stats-polling thread observed during one pass.
#[derive(Default)]
struct PollOutcome {
    /// Snapshots taken (periodic + the final post-run poll).
    polls: u64,
    /// First window-arithmetic violation, if any.
    failure: Option<String>,
    /// The last snapshot taken (lands in the summary).
    last_snapshot: Option<Value>,
}

/// Poll the stats endpoint until `stop`, then once more; every
/// consecutive pair of snapshots must satisfy
/// `window.completed == totals.completed(now) - totals.completed(prev)`
/// exactly — the rate arithmetic the snapshot's interval window exists
/// to support.
fn poll_stats(addr: &str, interval_ms: u64, stop: &std::sync::atomic::AtomicBool) -> PollOutcome {
    use std::sync::atomic::Ordering;
    let mut out = PollOutcome::default();
    let mut client = match EvalClient::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            out.failure = Some(format!("stats poller: connect failed: {e}"));
            return out;
        }
    };
    let field =
        |snap: &Value, a: &str, b: &str| snap.get(a).and_then(|s| s.get(b)).and_then(Value::as_f64);
    let mut prev_completed: Option<f64> = None;
    let mut done = false;
    while !done {
        done = stop.load(Ordering::Acquire);
        if !done {
            std::thread::sleep(std::time::Duration::from_millis(interval_ms));
        }
        // One final poll after stop, so the summary always carries the
        // end-of-run state.
        let snap = match client.stats() {
            Ok(s) => s,
            Err(e) => {
                out.failure
                    .get_or_insert_with(|| format!("stats poller: poll failed: {e}"));
                break;
            }
        };
        out.polls += 1;
        let completed = field(&snap, "totals", "completed_requests");
        let window = field(&snap, "window", "completed_requests");
        match (completed, window) {
            (Some(c), Some(w)) => {
                if let Some(p) = prev_completed {
                    if w != c - p {
                        out.failure.get_or_insert_with(|| {
                            format!(
                                "stats poll {}: window.completed {w} != totals delta {} - {}",
                                out.polls, c, p
                            )
                        });
                    }
                }
                prev_completed = Some(c);
            }
            _ => {
                out.failure
                    .get_or_insert_with(|| "stats snapshot missing counters".to_string());
            }
        }
        out.last_snapshot = Some(snap);
    }
    let _ = client.close();
    out
}

/// Everything one full load pass produced.
struct PassResult {
    latency: LatencySummary,
    completed: u64,
    shed: u64,
    errors: u64,
    max_rel_err: f64,
    worst: Option<String>,
    wall_s: f64,
    throughput: f64,
    server_clean: bool,
    poll: PollOutcome,
}

/// Run one complete load pass: spawn (or target) a server, drive it with
/// the scripted clients — polling stats alongside when
/// `stats_interval_ms > 0` — then shut it down and aggregate.
fn run_pass(
    args: &Arc<Args>,
    reference: &Option<Arc<ResidentFmm<Laplace>>>,
    stats_interval_ms: u64,
) -> PassResult {
    let (mut child, addr) = match &args.addr {
        Some(addr) => {
            eprintln!("load_test: targeting external server at {addr}");
            (None, addr.clone())
        }
        None => {
            let (child, addr) = spawn_server(args);
            (Some(child), addr)
        }
    };

    eprintln!(
        "load_test: {} clients x {} requests ({} targets each) against {addr}{}",
        args.clients,
        args.requests,
        args.batch,
        if stats_interval_ms > 0 {
            format!(", polling stats every {stats_interval_ms}ms")
        } else {
            String::new()
        }
    );
    let stop = std::sync::atomic::AtomicBool::new(false);
    let wall0 = Instant::now();
    let (outcomes, poll): (Vec<ClientOutcome>, PollOutcome) = std::thread::scope(|scope| {
        let poller = (stats_interval_ms > 0).then(|| {
            let addr = addr.clone();
            let stop = &stop;
            scope.spawn(move || poll_stats(&addr, stats_interval_ms, stop))
        });
        let handles: Vec<_> = (0..args.clients)
            .map(|id| {
                let per =
                    args.requests / args.clients + u32::from(id < args.requests % args.clients);
                let args = Arc::clone(args);
                let reference = reference.clone();
                let addr = addr.clone();
                scope.spawn(move || run_client(id, per, &addr, &args, reference.as_deref()))
            })
            .collect();
        let outcomes = handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect();
        stop.store(true, std::sync::atomic::Ordering::Release);
        let poll = poller
            .map(|p| p.join().expect("stats poller"))
            .unwrap_or_default();
        (outcomes, poll)
    });
    let wall_s = wall0.elapsed().as_secs_f64();

    // Ask the server to drain and exit, then reap the child.
    if let Ok(mut admin) = EvalClient::connect(&addr) {
        let _ = admin.send_shutdown();
        let _ = admin.close();
    }
    let mut server_clean = true;
    if let Some(child) = child.as_mut() {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("load_test: server exited with {status}");
                server_clean = false;
            }
            Err(e) => {
                eprintln!("load_test: failed to reap server: {e}");
                server_clean = false;
            }
        }
    }

    let mut latencies: Vec<f64> = Vec::new();
    let (mut completed, mut shed, mut errors) = (0u64, 0u64, 0u64);
    let mut max_rel_err = 0.0f64;
    let mut worst: Option<String> = None;
    for o in outcomes {
        latencies.extend_from_slice(&o.latencies_us);
        completed += o.completed;
        shed += o.shed;
        errors += o.errors;
        if o.max_rel_err > max_rel_err {
            max_rel_err = o.max_rel_err;
        }
        if worst.is_none() {
            worst = o.worst;
        }
    }
    let latency = LatencySummary::from_samples(&mut latencies);
    let throughput = completed as f64 / wall_s;
    PassResult {
        latency,
        completed,
        shed,
        errors,
        max_rel_err,
        worst,
        wall_s,
        throughput,
        server_clean,
        poll,
    }
}

fn main() {
    let args = Arc::new(parse_args());

    // Watchdog: a hung server must not hang CI.
    let budget = args.budget_s;
    std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_secs(budget));
        eprintln!("load_test: exceeded --budget-s {budget}, aborting");
        std::process::exit(3);
    });

    let reference = if args.verify {
        eprintln!(
            "load_test: building reference engine ({} points)",
            args.workload.points
        );
        Some(Arc::new(args.workload.build_engine()))
    } else {
        None
    };

    // Overhead-gate mode runs a polling-free baseline pass first; the
    // polled pass below is always the one reported and verified.
    let baseline = args.overhead_gate.map(|_| {
        eprintln!("load_test: overhead baseline pass (telemetry polling off)");
        run_pass(&args, &reference, 0)
    });
    let interval = if args.overhead_gate.is_some() {
        args.stats_interval_ms.max(100)
    } else {
        args.stats_interval_ms
    };
    let pass = run_pass(&args, &reference, interval);
    let PassResult {
        latency,
        completed,
        shed,
        errors,
        max_rel_err,
        worst,
        wall_s,
        throughput,
        server_clean,
        poll,
    } = pass;
    let worst = worst.as_deref();

    println!("== service load test ==");
    println!(
        "requests: {completed} ok, {shed} shed, {errors} errors ({} asked)",
        args.requests
    );
    println!(
        "latency us: p50 {:.0}  p95 {:.0}  p99 {:.0}  max {:.0}  mean {:.0}",
        latency.p50_us, latency.p95_us, latency.p99_us, latency.max_us, latency.mean_us
    );
    println!("throughput: {throughput:.0} req/s over {wall_s:.2}s");
    if args.verify {
        println!("max rel err vs reference: {max_rel_err:.3e}");
    }
    if let Some(w) = worst {
        eprintln!("load_test: first failure: {w}");
    }

    let mut fields = vec![
        (
            "params",
            obj(vec![
                ("clients", Value::from(u64::from(args.clients))),
                ("requests", Value::from(u64::from(args.requests))),
                ("batch", Value::from(args.batch)),
                ("tenants", Value::from(u64::from(args.tenants))),
                ("points", Value::from(args.workload.points)),
                ("seed", Value::from(args.workload.seed)),
                ("theta", Value::from(args.workload.theta)),
                ("tile", Value::from(args.tile)),
                ("workers", Value::from(args.workers)),
                ("stats_interval_ms", Value::from(interval)),
            ]),
        ),
        ("completed", Value::from(completed)),
        ("shed", Value::from(shed)),
        ("errors", Value::from(errors)),
        ("verified", Value::from(args.verify)),
        ("max_rel_err", Value::from(max_rel_err)),
        ("latency", latency.to_json()),
        ("throughput_rps", Value::from(throughput)),
        ("wall_s", Value::from(wall_s)),
        ("stats_polls", Value::from(poll.polls)),
        ("rate_math_ok", Value::from(poll.failure.is_none())),
    ];
    if let Some(snap) = poll.last_snapshot {
        fields.push(("server_stats", snap));
    }
    if let (Some(ratio), Some(base)) = (args.overhead_gate, &baseline) {
        let bound = (ratio * base.latency.p99_us).max(base.latency.p99_us + args.overhead_grace_us);
        fields.push((
            "overhead",
            obj(vec![
                ("p99_us_without_polling", Value::from(base.latency.p99_us)),
                ("p99_us_with_polling", Value::from(latency.p99_us)),
                ("gate_ratio", Value::from(ratio)),
                ("grace_us", Value::from(args.overhead_grace_us)),
                ("bound_us", Value::from(bound)),
            ]),
        ));
    }
    let summary = obj(fields);
    if let Err(e) = write_summary(&args.out, &summary) {
        eprintln!("load_test: failed to write {}: {e}", args.out.display());
        std::process::exit(1);
    }
    eprintln!("load_test: wrote {}", args.out.display());

    let mut failed = false;
    if errors > 0 {
        eprintln!("FAIL: {errors} requests errored");
        failed = true;
    }
    if completed + shed + errors < u64::from(args.requests) {
        eprintln!(
            "FAIL: only {completed} of {} requests answered",
            args.requests
        );
        failed = true;
    }
    if shed > 0 && !args.allow_shed {
        eprintln!("FAIL: {shed} requests shed (pass --allow-shed to tolerate)");
        failed = true;
    }
    if args.verify && max_rel_err > args.rel_err {
        eprintln!(
            "FAIL: max rel err {max_rel_err:.3e} over the {:.1e} bound",
            args.rel_err
        );
        failed = true;
    }
    if let Some(gate) = args.p99_gate_us {
        if latency.p99_us > gate {
            eprintln!(
                "FAIL: p99 {:.0}us over the {gate:.0}us gate",
                latency.p99_us
            );
            failed = true;
        }
    }
    if !server_clean {
        eprintln!("FAIL: server did not exit cleanly");
        failed = true;
    }
    if interval > 0 {
        if let Some(f) = &poll.failure {
            eprintln!("FAIL: {f}");
            failed = true;
        }
        if poll.polls < 2 {
            eprintln!(
                "FAIL: only {} stats polls completed; rate math needs two",
                poll.polls
            );
            failed = true;
        }
    }
    if let (Some(ratio), Some(base)) = (args.overhead_gate, &baseline) {
        if !base.server_clean || base.errors > 0 {
            eprintln!("FAIL: overhead baseline pass did not run cleanly");
            failed = true;
        }
        let bound = (ratio * base.latency.p99_us).max(base.latency.p99_us + args.overhead_grace_us);
        eprintln!(
            "load_test: telemetry overhead p99 {:.0}us (polled) vs {:.0}us (unpolled), bound {:.0}us",
            latency.p99_us, base.latency.p99_us, bound
        );
        if latency.p99_us > bound {
            eprintln!(
                "FAIL: polled p99 {:.0}us over the overhead bound {bound:.0}us",
                latency.p99_us
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
