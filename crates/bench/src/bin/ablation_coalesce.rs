//! **Ablation** — per-destination parcel coalescing (paper §IV).
//!
//! DASHMM examines each triggered node's out-edge list and sends a single
//! coalesced active-message parcel per destination locality instead of one
//! message per edge.  This ablation quantifies what that buys: message
//! count, network bytes and makespan, FIFO scheduling, cube Laplace.
//!
//! Run: `cargo run --release -p dashmm-bench --bin ablation_coalesce [--n N]`

use dashmm_bench::{banner, build_workload, cost_model, distribute, Opts};
use dashmm_sim::{simulate, CoalesceConfig, NetworkModel, SimConfig};

const CORES_PER_LOCALITY: usize = 32;

fn main() {
    let opts = Opts::parse();
    banner(
        "Ablation — coalesced vs per-edge remote parcels",
        &format!("workload: {:?} {:?} n={}", opts.dist, opts.kernel, opts.n),
    );
    let mut w = build_workload(&opts, 1);
    let cost = cost_model(&opts, opts.cost);

    println!(
        "\n{:>6}  {:>10}  {:>12}  {:>10}  {:>12}  {:>10}  {:>8}",
        "cores", "msgs", "bytes", "t [ms]", "msgs(off)", "bytes(off)", "slowdown"
    );
    let mut checked = false;
    for localities in [2usize, 4, 16, 64] {
        distribute(&w.problem, &mut w.asm, localities as u32);
        let run = |coalesce: bool| {
            let net = NetworkModel {
                coalesce: if coalesce {
                    CoalesceConfig::default()
                } else {
                    CoalesceConfig::disabled()
                },
                ..NetworkModel::gemini()
            };
            let cfg = SimConfig {
                localities,
                cores_per_locality: CORES_PER_LOCALITY,
                priority: false,
                trace: false,
                levelwise: false,
            };
            simulate(&w.asm.dag, &cost, &net, &cfg)
        };
        let on = run(true);
        let off = run(false);
        println!(
            "{:>6}  {:>10}  {:>12}  {:>10.2}  {:>12}  {:>12}  {:>7.2}x",
            localities * CORES_PER_LOCALITY,
            on.messages,
            on.bytes,
            on.makespan_us / 1e3,
            off.messages,
            off.bytes,
            off.makespan_us / on.makespan_us
        );
        if localities == 16 {
            checked = true;
            check(
                "coalescing sends far fewer messages",
                off.messages > 2 * on.messages,
            );
            check("coalescing sends fewer bytes", off.bytes > on.bytes);
            check(
                "coalescing is not slower",
                off.makespan_us >= on.makespan_us * 0.99,
            );
        }
    }
    assert!(checked);
}

fn check(what: &str, ok: bool) {
    println!("[{}] {}", if ok { "ok" } else { "MISMATCH" }, what);
}
