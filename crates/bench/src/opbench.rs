//! Per-edge vs batched operator micro-measurements.
//!
//! Backs both the `batched_vs_peredge` criterion bench and the
//! `bench_operators` binary that emits `BENCH_operators.json` — the CI
//! artifact gating the batched hot path's speedup claim.
//!
//! Both paths do the full per-edge work: the baseline runs the public
//! per-edge operator (including the operator-cache lookup the runtime
//! pays on every edge), the batched path gathers the same sources, runs
//! one blocked multi-RHS product, and copies each output column back
//! out — so scatter cost is charged to the batched side.

use std::io::Write;
use std::path::Path;
use std::time::Instant;

use dashmm_expansion::{batch, ops, AccuracyParams, BatchWorkspace, LevelTables};
use dashmm_kernels::{Kernel, Laplace, Yukawa};
use dashmm_tree::{Direction, Point3};

/// One operator's per-edge vs batched timing at a given batch size.
#[derive(Clone, Debug)]
pub struct OpBenchCase {
    /// Operator name (`M2L`, `M2M`, `L2L`, `I2I`).
    pub op: &'static str,
    /// Kernel name (`laplace`, `yukawa`).
    pub kernel: &'static str,
    /// Number of edges in the batch.
    pub edges: usize,
    /// Nanoseconds per edge through the per-edge operator loop.
    pub per_edge_ns: f64,
    /// Nanoseconds per edge through the batched entry point.
    pub batched_ns: f64,
}

impl OpBenchCase {
    /// Per-edge time over batched time (higher is better for batching).
    pub fn speedup(&self) -> f64 {
        self.per_edge_ns / self.batched_ns
    }
}

/// Deterministic random expansion coefficients (xorshift, no rand dep on
/// the hot path).
pub fn random_expansions(n: usize, len: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    (0..n)
        .map(|_| (0..len).map(|_| next() * 2.0).collect())
        .collect()
}

/// Measurement repetitions; shrunk under `DASHMM_BENCH_FAST=1` so the CI
/// smoke run stays cheap.
pub fn default_reps() -> usize {
    if std::env::var("DASHMM_BENCH_FAST").is_ok_and(|v| v == "1") {
        7
    } else {
        30
    }
}

/// Best-of-`reps` wall time of `f`, in nanoseconds (one untimed warmup).
fn best_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos() as f64);
    }
    best
}

/// Level tables shared by the dense-operator cases (plane-wave surfaces
/// included so the I2I case can run off the same tables).
pub fn bench_tables<K: Kernel>(kernel: &K) -> LevelTables {
    LevelTables::build(kernel, &AccuracyParams::three_digit(), 3, 0.25, true)
}

/// `M→L`: the headline case — one cached translation matrix, many source
/// multipoles.
pub fn m2l_case<K: Kernel>(
    kernel: &K,
    kernel_name: &'static str,
    t: &LevelTables,
    edges: usize,
    reps: usize,
) -> OpBenchCase {
    let n = t.expansion_len();
    let offset = (2i8, 1i8, 0i8);
    drop(t.m2l(kernel, offset)); // warm the cache: measure application, not assembly
    let srcs = random_expansions(edges, n, 17);
    let refs: Vec<&[f64]> = srcs.iter().map(|s| s.as_slice()).collect();
    let mut outs = vec![vec![0.0; n]; edges];
    let mut ws = BatchWorkspace::new();
    let per_edge_ns = best_ns(reps, || {
        for (src, out) in srcs.iter().zip(outs.iter_mut()) {
            out.fill(0.0);
            ops::m2l(kernel, t, offset, src, out);
        }
    }) / edges as f64;
    let batched_ns = best_ns(reps, || {
        batch::m2l_batch(kernel, t, offset, &refs, &mut ws, |i, col| {
            outs[i].copy_from_slice(col)
        });
    }) / edges as f64;
    OpBenchCase {
        op: "M2L",
        kernel: kernel_name,
        edges,
        per_edge_ns,
        batched_ns,
    }
}

/// `M→M`: one child-octant shift matrix, many child multipoles.
pub fn m2m_case(
    kernel_name: &'static str,
    t: &LevelTables,
    edges: usize,
    reps: usize,
) -> OpBenchCase {
    let n = t.expansion_len();
    let octant = 3u8;
    let srcs = random_expansions(edges, n, 23);
    let refs: Vec<&[f64]> = srcs.iter().map(|s| s.as_slice()).collect();
    let mut outs = vec![vec![0.0; n]; edges];
    let mut ws = BatchWorkspace::new();
    let per_edge_ns = best_ns(reps, || {
        for (src, out) in srcs.iter().zip(outs.iter_mut()) {
            out.fill(0.0);
            ops::m2m(t, octant, src, out);
        }
    }) / edges as f64;
    let batched_ns = best_ns(reps, || {
        batch::m2m_batch(t, octant, &refs, &mut ws, |i, col| {
            outs[i].copy_from_slice(col)
        });
    }) / edges as f64;
    OpBenchCase {
        op: "M2M",
        kernel: kernel_name,
        edges,
        per_edge_ns,
        batched_ns,
    }
}

/// `L→L`: one octant push-down matrix, many parent locals.
pub fn l2l_case(
    kernel_name: &'static str,
    t: &LevelTables,
    edges: usize,
    reps: usize,
) -> OpBenchCase {
    let n = t.expansion_len();
    let octant = 6u8;
    let srcs = random_expansions(edges, n, 29);
    let refs: Vec<&[f64]> = srcs.iter().map(|s| s.as_slice()).collect();
    let mut outs = vec![vec![0.0; n]; edges];
    let mut ws = BatchWorkspace::new();
    let per_edge_ns = best_ns(reps, || {
        for (src, out) in srcs.iter().zip(outs.iter_mut()) {
            out.fill(0.0);
            ops::l2l(t, octant, src, out);
        }
    }) / edges as f64;
    let batched_ns = best_ns(reps, || {
        batch::l2l_batch(t, octant, &refs, &mut ws, |i, col| {
            outs[i].copy_from_slice(col)
        });
    }) / edges as f64;
    OpBenchCase {
        op: "L2L",
        kernel: kernel_name,
        edges,
        per_edge_ns,
        batched_ns,
    }
}

/// `I→I`: the diagonal operator — no GEMM to win, recorded for honesty
/// (batching only amortises the factor-cache lookup).
pub fn i2i_case(
    kernel_name: &'static str,
    t: &LevelTables,
    edges: usize,
    reps: usize,
) -> OpBenchCase {
    let w = t.planewave_len();
    let side = t.side();
    let delta = Point3::new(side, 0.0, 2.0 * side);
    let fac = t.i2i(Direction::Up, delta);
    let srcs = random_expansions(edges, w, 31);
    let refs: Vec<&[f64]> = srcs.iter().map(|s| s.as_slice()).collect();
    let mut outs = vec![vec![0.0; w]; edges];
    let mut ws = BatchWorkspace::new();
    let per_edge_ns = best_ns(reps, || {
        for (src, out) in srcs.iter().zip(outs.iter_mut()) {
            out.fill(0.0);
            let f = t.i2i(Direction::Up, delta);
            ops::i2i_apply(&f, src, out);
        }
    }) / edges as f64;
    let batched_ns = best_ns(reps, || {
        batch::i2i_batch(&fac, &refs, &mut ws, |i, col| outs[i].copy_from_slice(col));
    }) / edges as f64;
    OpBenchCase {
        op: "I2I",
        kernel: kernel_name,
        edges,
        per_edge_ns,
        batched_ns,
    }
}

/// Run the full case matrix for one kernel.
pub fn kernel_cases<K: Kernel>(
    kernel: &K,
    kernel_name: &'static str,
    edges: usize,
    reps: usize,
) -> Vec<OpBenchCase> {
    let t = bench_tables(kernel);
    vec![
        m2l_case(kernel, kernel_name, &t, edges, reps),
        m2m_case(kernel_name, &t, edges, reps),
        l2l_case(kernel_name, &t, edges, reps),
        i2i_case(kernel_name, &t, edges, reps),
    ]
}

/// Run the full matrix: Laplace and Yukawa over all batched operators.
pub fn run_all(edges: usize, reps: usize) -> Vec<OpBenchCase> {
    let mut cases = kernel_cases(&Laplace, "laplace", edges, reps);
    cases.extend(kernel_cases(&Yukawa::new(1.0), "yukawa", edges, reps));
    cases
}

/// Serialise cases to the machine-readable `BENCH_operators.json` schema.
pub fn to_json(cases: &[OpBenchCase], edges: usize, fast: bool) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"operators\",\n");
    s.push_str(&format!("  \"edges\": {edges},\n"));
    s.push_str(&format!("  \"fast_mode\": {fast},\n"));
    s.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"op\": \"{}\", \"kernel\": \"{}\", \"edges\": {}, \
             \"per_edge_ns\": {:.1}, \"batched_ns\": {:.1}, \"speedup\": {:.3}}}{}\n",
            c.op,
            c.kernel,
            c.edges,
            c.per_edge_ns,
            c.batched_ns,
            c.speedup(),
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Write `BENCH_operators.json`; creates parent directories.
pub fn write_json(
    path: &Path,
    cases: &[OpBenchCase],
    edges: usize,
    fast: bool,
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_json(cases, edges, fast).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m2l_case_produces_sane_timings() {
        let t = bench_tables(&Laplace);
        let c = m2l_case(&Laplace, "laplace", &t, 24, 2);
        assert!(c.per_edge_ns > 0.0 && c.batched_ns > 0.0);
        assert!(c.speedup() > 0.0);
    }

    #[test]
    fn json_schema_is_stable() {
        let cases = vec![OpBenchCase {
            op: "M2L",
            kernel: "laplace",
            edges: 1024,
            per_edge_ns: 1000.0,
            batched_ns: 400.0,
        }];
        let j = to_json(&cases, 1024, true);
        assert!(j.contains("\"bench\": \"operators\""));
        assert!(j.contains("\"speedup\": 2.500"));
        assert!(j.contains("\"fast_mode\": true"));
        assert!(j.trim_end().ends_with('}'));
    }
}
