//! Per-edge vs batched operator micro-measurements.
//!
//! Backs both the `batched_vs_peredge` criterion bench and the
//! `bench_operators` binary that emits `BENCH_operators.json` — the CI
//! artifact gating the batched hot path's speedup claim.  Alongside the
//! expansion operators, the particle-class operators (`S→T`, `S→M`,
//! `L→T`) are measured as scalar per-pair replicas of the loops the SoA
//! tile engine replaced vs the batched-kernel path, reported per
//! application, per kernel pair, and per target point — the numbers the
//! simulator's particle-cost refresh splices into its Table II baseline.
//!
//! Both paths do the full per-edge work: the baseline runs the public
//! per-edge operator (including the operator-cache lookup the runtime
//! pays on every edge), the batched path gathers the same sources, runs
//! one blocked multi-RHS product, and copies each output column back
//! out — so scatter cost is charged to the batched side.

use std::io::Write;
use std::path::Path;
use std::time::Instant;

use dashmm_expansion::{batch, ops, AccuracyParams, BatchWorkspace, LevelTables};
use dashmm_kernels::{Kernel, Laplace, Yukawa};
use dashmm_tree::{Direction, Point3};

/// One operator's per-edge vs batched timing at a given batch size.
#[derive(Clone, Debug)]
pub struct OpBenchCase {
    /// Operator name (`M2L`, `M2M`, `L2L`, `I2I`).
    pub op: &'static str,
    /// Kernel name (`laplace`, `yukawa`).
    pub kernel: &'static str,
    /// Number of edges in the batch.
    pub edges: usize,
    /// Nanoseconds per edge through the per-edge operator loop.
    pub per_edge_ns: f64,
    /// Nanoseconds per edge through the batched entry point.
    pub batched_ns: f64,
}

impl OpBenchCase {
    /// Per-edge time over batched time (higher is better for batching).
    pub fn speedup(&self) -> f64 {
        self.per_edge_ns / self.batched_ns
    }
}

/// Deterministic random expansion coefficients (xorshift, no rand dep on
/// the hot path).
pub fn random_expansions(n: usize, len: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    (0..n)
        .map(|_| (0..len).map(|_| next() * 2.0).collect())
        .collect()
}

/// Measurement repetitions; shrunk under `DASHMM_BENCH_FAST=1` so the CI
/// smoke run stays cheap.
pub fn default_reps() -> usize {
    if std::env::var("DASHMM_BENCH_FAST").is_ok_and(|v| v == "1") {
        7
    } else {
        30
    }
}

/// Best-of-`reps` wall time of `f`, in nanoseconds (one untimed warmup).
fn best_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos() as f64);
    }
    best
}

/// Level tables shared by the dense-operator cases (plane-wave surfaces
/// included so the I2I case can run off the same tables).
pub fn bench_tables<K: Kernel>(kernel: &K) -> LevelTables {
    LevelTables::build(kernel, &AccuracyParams::three_digit(), 3, 0.25, true)
}

/// `M→L`: the headline case — one cached translation matrix, many source
/// multipoles.
pub fn m2l_case<K: Kernel>(
    kernel: &K,
    kernel_name: &'static str,
    t: &LevelTables,
    edges: usize,
    reps: usize,
) -> OpBenchCase {
    let n = t.expansion_len();
    let offset = (2i8, 1i8, 0i8);
    drop(t.m2l(kernel, offset)); // warm the cache: measure application, not assembly
    let srcs = random_expansions(edges, n, 17);
    let refs: Vec<&[f64]> = srcs.iter().map(|s| s.as_slice()).collect();
    let mut outs = vec![vec![0.0; n]; edges];
    let mut ws = BatchWorkspace::new();
    let per_edge_ns = best_ns(reps, || {
        for (src, out) in srcs.iter().zip(outs.iter_mut()) {
            out.fill(0.0);
            ops::m2l(kernel, t, offset, src, out);
        }
    }) / edges as f64;
    let batched_ns = best_ns(reps, || {
        batch::m2l_batch(kernel, t, offset, &refs, &mut ws, |i, col| {
            outs[i].copy_from_slice(col)
        });
    }) / edges as f64;
    OpBenchCase {
        op: "M2L",
        kernel: kernel_name,
        edges,
        per_edge_ns,
        batched_ns,
    }
}

/// `M→M`: one child-octant shift matrix, many child multipoles.
pub fn m2m_case(
    kernel_name: &'static str,
    t: &LevelTables,
    edges: usize,
    reps: usize,
) -> OpBenchCase {
    let n = t.expansion_len();
    let octant = 3u8;
    let srcs = random_expansions(edges, n, 23);
    let refs: Vec<&[f64]> = srcs.iter().map(|s| s.as_slice()).collect();
    let mut outs = vec![vec![0.0; n]; edges];
    let mut ws = BatchWorkspace::new();
    let per_edge_ns = best_ns(reps, || {
        for (src, out) in srcs.iter().zip(outs.iter_mut()) {
            out.fill(0.0);
            ops::m2m(t, octant, src, out);
        }
    }) / edges as f64;
    let batched_ns = best_ns(reps, || {
        batch::m2m_batch(t, octant, &refs, &mut ws, |i, col| {
            outs[i].copy_from_slice(col)
        });
    }) / edges as f64;
    OpBenchCase {
        op: "M2M",
        kernel: kernel_name,
        edges,
        per_edge_ns,
        batched_ns,
    }
}

/// `L→L`: one octant push-down matrix, many parent locals.
pub fn l2l_case(
    kernel_name: &'static str,
    t: &LevelTables,
    edges: usize,
    reps: usize,
) -> OpBenchCase {
    let n = t.expansion_len();
    let octant = 6u8;
    let srcs = random_expansions(edges, n, 29);
    let refs: Vec<&[f64]> = srcs.iter().map(|s| s.as_slice()).collect();
    let mut outs = vec![vec![0.0; n]; edges];
    let mut ws = BatchWorkspace::new();
    let per_edge_ns = best_ns(reps, || {
        for (src, out) in srcs.iter().zip(outs.iter_mut()) {
            out.fill(0.0);
            ops::l2l(t, octant, src, out);
        }
    }) / edges as f64;
    let batched_ns = best_ns(reps, || {
        batch::l2l_batch(t, octant, &refs, &mut ws, |i, col| {
            outs[i].copy_from_slice(col)
        });
    }) / edges as f64;
    OpBenchCase {
        op: "L2L",
        kernel: kernel_name,
        edges,
        per_edge_ns,
        batched_ns,
    }
}

/// `I→I`: the diagonal operator — no GEMM to win, recorded for honesty
/// (batching only amortises the factor-cache lookup).
pub fn i2i_case(
    kernel_name: &'static str,
    t: &LevelTables,
    edges: usize,
    reps: usize,
) -> OpBenchCase {
    let w = t.planewave_len();
    let side = t.side();
    let delta = Point3::new(side, 0.0, 2.0 * side);
    let fac = t.i2i(Direction::Up, delta);
    let srcs = random_expansions(edges, w, 31);
    let refs: Vec<&[f64]> = srcs.iter().map(|s| s.as_slice()).collect();
    let mut outs = vec![vec![0.0; w]; edges];
    let mut ws = BatchWorkspace::new();
    let per_edge_ns = best_ns(reps, || {
        for (src, out) in srcs.iter().zip(outs.iter_mut()) {
            out.fill(0.0);
            let f = t.i2i(Direction::Up, delta);
            ops::i2i_apply(&f, src, out);
        }
    }) / edges as f64;
    let batched_ns = best_ns(reps, || {
        batch::i2i_batch(&fac, &refs, &mut ws, |i, col| outs[i].copy_from_slice(col));
    }) / edges as f64;
    OpBenchCase {
        op: "I2I",
        kernel: kernel_name,
        edges,
        per_edge_ns,
        batched_ns,
    }
}

/// One particle-class operator's scalar-replica vs batched-engine timing.
#[derive(Clone, Debug)]
pub struct ParticleBenchCase {
    /// Operator name (`S2T`, `S2M`, `L2T`).
    pub op: &'static str,
    /// Kernel name (`laplace`, `yukawa`).
    pub kernel: &'static str,
    /// Kernel evaluations (source–target pairs) per application.
    pub pairs: usize,
    /// Output points (targets or surface densities) per application.
    pub points: usize,
    /// Nanoseconds per application through the scalar per-pair loop the
    /// SoA engine replaced.
    pub scalar_ns: f64,
    /// Nanoseconds per application through the batched tile engine.
    pub batched_ns: f64,
}

impl ParticleBenchCase {
    /// Scalar time over batched time (higher is better for the engine).
    pub fn speedup(&self) -> f64 {
        self.scalar_ns / self.batched_ns
    }

    /// Batched cost per source–target pair.
    pub fn per_pair_ns(&self) -> f64 {
        self.batched_ns / self.pairs as f64
    }

    /// Batched cost per output point.
    pub fn per_point_ns(&self) -> f64 {
        self.batched_ns / self.points as f64
    }
}

/// Deterministic point cloud in a box (xorshift; matches the operator
/// tests' generator).
fn particle_cloud(center: Point3, side: f64, n: usize, salt: u64) -> (Vec<Point3>, Vec<f64>) {
    let mut state = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let pts = (0..n)
        .map(|_| center + Point3::new(next() * side, next() * side, next() * side))
        .collect();
    let charges = (0..n).map(|_| next() * 2.0).collect();
    (pts, charges)
}

/// The scalar per-pair near-field loop the tile engine replaced.
fn scalar_p2p<K: Kernel>(k: &K, src: &[Point3], q: &[f64], tgt: &[Point3], out: &mut [f64]) {
    for (tp, o) in tgt.iter().zip(out.iter_mut()) {
        let mut acc = 0.0;
        for (s, &w) in src.iter().zip(q) {
            acc += w * k.eval(tp.dist(s));
        }
        *o += acc;
    }
}

/// `S→T`: one target leaf against its full near-field list (the fused
/// evaluation the executor's S2T batcher performs), vs per-box scalar
/// per-pair loops.
pub fn s2t_case<K: Kernel>(
    kernel: &K,
    kernel_name: &'static str,
    leaf: usize,
    boxes: usize,
    reps: usize,
) -> ParticleBenchCase {
    let side = 0.25;
    let (tgt, _) = particle_cloud(Point3::ZERO, side, leaf, 2);
    let blocks: Vec<(Vec<Point3>, Vec<f64>)> = (0..boxes)
        .map(|b| {
            let c = Point3::new(
                ((b % 3) as f64 - 1.0) * side,
                (((b / 3) % 3) as f64 - 1.0) * side,
                ((b / 9) as f64 - 1.0) * side,
            );
            particle_cloud(c, side, leaf, 100 + b as u64)
        })
        .collect();
    let mut out = vec![0.0; leaf];
    let scalar_ns = best_ns(reps, || {
        out.fill(0.0);
        for (pts, q) in &blocks {
            scalar_p2p(kernel, pts, q, &tgt, &mut out);
        }
    });
    let mut ws = BatchWorkspace::new();
    let batched_ns = best_ns(reps, || {
        out.fill(0.0);
        ops::p2p_fused(
            kernel,
            blocks.iter().map(|(p, q)| (p.as_slice(), q.as_slice())),
            &tgt,
            &mut ws,
            &mut out,
        );
    });
    ParticleBenchCase {
        op: "S2T",
        kernel: kernel_name,
        pairs: boxes * leaf * leaf,
        points: leaf,
        scalar_ns,
        batched_ns,
    }
}

/// `S→M`: one leaf's check-surface projection, scalar per-pair replica vs
/// the SoA engine (both end in the same `uc2ue` solve).
pub fn s2m_particle_case<K: Kernel>(
    kernel: &K,
    kernel_name: &'static str,
    t: &LevelTables,
    leaf: usize,
    reps: usize,
) -> ParticleBenchCase {
    let c = Point3::ZERO;
    let (src, q) = particle_cloud(c, t.side(), leaf, 11);
    let n = t.expansion_len();
    let mut check = vec![0.0; n];
    let mut m = vec![0.0; n];
    let scalar_ns = best_ns(reps, || {
        for (i, cp) in t.uc_pts().iter().enumerate() {
            let p = c + *cp;
            let mut acc = 0.0;
            for (s, &w) in src.iter().zip(&q) {
                acc += w * kernel.eval(p.dist(s));
            }
            check[i] = acc;
        }
        t.uc2ue().matvec_into(&check, &mut m);
    });
    let mut ws = BatchWorkspace::new();
    let batched_ns = best_ns(reps, || {
        ops::s2m(kernel, t, c, &src, &q, &mut ws, &mut m);
    });
    ParticleBenchCase {
        op: "S2M",
        kernel: kernel_name,
        pairs: t.uc_pts().len() * leaf,
        points: n,
        scalar_ns,
        batched_ns,
    }
}

/// `L→T`: evaluate a local expansion at a leaf's targets, scalar per-pair
/// replica vs the SoA engine.
pub fn l2t_particle_case<K: Kernel>(
    kernel: &K,
    kernel_name: &'static str,
    t: &LevelTables,
    leaf: usize,
    reps: usize,
) -> ParticleBenchCase {
    let c = Point3::ZERO;
    let (tgt, _) = particle_cloud(c, t.side(), leaf, 13);
    let n = t.expansion_len();
    let l = random_expansions(1, n, 41).pop().unwrap();
    let mut out = vec![0.0; leaf];
    let scalar_ns = best_ns(reps, || {
        out.fill(0.0);
        for (tp, o) in tgt.iter().zip(out.iter_mut()) {
            let mut acc = 0.0;
            for (j, ep) in t.de_pts().iter().enumerate() {
                acc += l[j] * kernel.eval(tp.dist(&(c + *ep)));
            }
            *o += acc;
        }
    });
    let mut ws = BatchWorkspace::new();
    let batched_ns = best_ns(reps, || {
        out.fill(0.0);
        ops::l2t(kernel, t, c, &l, &tgt, &mut ws, &mut out);
    });
    ParticleBenchCase {
        op: "L2T",
        kernel: kernel_name,
        pairs: t.de_pts().len() * leaf,
        points: leaf,
        scalar_ns,
        batched_ns,
    }
}

/// Run the particle-operator matrix for one kernel at leaf occupancy
/// `leaf` (the refinement threshold).
pub fn particle_kernel_cases<K: Kernel>(
    kernel: &K,
    kernel_name: &'static str,
    leaf: usize,
    reps: usize,
) -> Vec<ParticleBenchCase> {
    let t = bench_tables(kernel);
    vec![
        s2t_case(kernel, kernel_name, leaf, 26, reps),
        s2m_particle_case(kernel, kernel_name, &t, leaf, reps),
        l2t_particle_case(kernel, kernel_name, &t, leaf, reps),
    ]
}

/// Particle matrix: Laplace and Yukawa over `S→T`, `S→M`, `L→T`.
pub fn particle_run_all(leaf: usize, reps: usize) -> Vec<ParticleBenchCase> {
    let mut cases = particle_kernel_cases(&Laplace, "laplace", leaf, reps);
    cases.extend(particle_kernel_cases(
        &Yukawa::new(1.0),
        "yukawa",
        leaf,
        reps,
    ));
    cases
}

/// Run the full case matrix for one kernel.
pub fn kernel_cases<K: Kernel>(
    kernel: &K,
    kernel_name: &'static str,
    edges: usize,
    reps: usize,
) -> Vec<OpBenchCase> {
    let t = bench_tables(kernel);
    vec![
        m2l_case(kernel, kernel_name, &t, edges, reps),
        m2m_case(kernel_name, &t, edges, reps),
        l2l_case(kernel_name, &t, edges, reps),
        i2i_case(kernel_name, &t, edges, reps),
    ]
}

/// Run the full matrix: Laplace and Yukawa over all batched operators.
pub fn run_all(edges: usize, reps: usize) -> Vec<OpBenchCase> {
    let mut cases = kernel_cases(&Laplace, "laplace", edges, reps);
    cases.extend(kernel_cases(&Yukawa::new(1.0), "yukawa", edges, reps));
    cases
}

/// Serialise cases to the machine-readable `BENCH_operators.json` schema.
/// `particle` adds a `particle_cases` section with the SoA engine's
/// per-pair and per-point costs (empty slice = omitted values but the
/// section is always present for schema stability).
pub fn to_json(
    cases: &[OpBenchCase],
    particle: &[ParticleBenchCase],
    edges: usize,
    leaf: usize,
    fast: bool,
) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"operators\",\n");
    s.push_str(&format!("  \"edges\": {edges},\n"));
    s.push_str(&format!("  \"leaf\": {leaf},\n"));
    s.push_str(&format!(
        "  \"simd_kernels\": {},\n",
        dashmm_kernels::simd_kernels_active()
    ));
    s.push_str(&format!("  \"fast_mode\": {fast},\n"));
    s.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"op\": \"{}\", \"kernel\": \"{}\", \"edges\": {}, \
             \"per_edge_ns\": {:.1}, \"batched_ns\": {:.1}, \"speedup\": {:.3}}}{}\n",
            c.op,
            c.kernel,
            c.edges,
            c.per_edge_ns,
            c.batched_ns,
            c.speedup(),
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"particle_cases\": [\n");
    for (i, c) in particle.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"op\": \"{}\", \"kernel\": \"{}\", \"pairs\": {}, \"points\": {}, \
             \"scalar_ns\": {:.1}, \"batched_ns\": {:.1}, \"per_pair_ns\": {:.3}, \
             \"per_point_ns\": {:.1}, \"speedup\": {:.3}}}{}\n",
            c.op,
            c.kernel,
            c.pairs,
            c.points,
            c.scalar_ns,
            c.batched_ns,
            c.per_pair_ns(),
            c.per_point_ns(),
            c.speedup(),
            if i + 1 < particle.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Write `BENCH_operators.json`; creates parent directories.
pub fn write_json(
    path: &Path,
    cases: &[OpBenchCase],
    particle: &[ParticleBenchCase],
    edges: usize,
    leaf: usize,
    fast: bool,
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_json(cases, particle, edges, leaf, fast).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m2l_case_produces_sane_timings() {
        let t = bench_tables(&Laplace);
        let c = m2l_case(&Laplace, "laplace", &t, 24, 2);
        assert!(c.per_edge_ns > 0.0 && c.batched_ns > 0.0);
        assert!(c.speedup() > 0.0);
    }

    #[test]
    fn json_schema_is_stable() {
        let cases = vec![OpBenchCase {
            op: "M2L",
            kernel: "laplace",
            edges: 1024,
            per_edge_ns: 1000.0,
            batched_ns: 400.0,
        }];
        let particle = vec![ParticleBenchCase {
            op: "S2T",
            kernel: "laplace",
            pairs: 93_600,
            points: 60,
            scalar_ns: 200_000.0,
            batched_ns: 50_000.0,
        }];
        let j = to_json(&cases, &particle, 1024, 60, true);
        assert!(j.contains("\"bench\": \"operators\""));
        assert!(j.contains("\"speedup\": 2.500"));
        assert!(j.contains("\"fast_mode\": true"));
        assert!(j.contains("\"particle_cases\""));
        assert!(j.contains("\"pairs\": 93600"));
        assert!(j.contains("\"speedup\": 4.000"));
        assert!(j.trim_end().ends_with('}'));
    }

    #[test]
    fn s2t_case_produces_sane_timings() {
        let c = s2t_case(&Laplace, "laplace", 20, 4, 2);
        assert!(c.scalar_ns > 0.0 && c.batched_ns > 0.0);
        assert_eq!(c.pairs, 4 * 20 * 20);
        assert!(c.per_pair_ns() > 0.0);
    }

    #[test]
    fn particle_cases_cover_all_ops() {
        let cases = particle_kernel_cases(&Laplace, "laplace", 16, 1);
        let ops: Vec<&str> = cases.iter().map(|c| c.op).collect();
        assert_eq!(ops, vec!["S2T", "S2M", "L2T"]);
    }
}
