//! Measured multi-process runs for the harness binaries.
//!
//! With `--transport socket` a binary stops simulating localities and
//! becomes them: [`maybe_run`] re-executes the binary once per locality
//! (via `dashmm_net::bootstrap`), every rank builds the identical
//! evaluation SPMD-style and runs its share over the real socket
//! transport, the per-rank partial potentials are gathered and summed at
//! rank 0, and rank 0 verifies the merged result against a single-process
//! reference.  The communication metrics (parcels/bytes per destination,
//! batch histogram, flush reasons) are printed per rank, and — for the
//! figure binaries — compared against the simulator's prediction for the
//! same locality count and coalescing configuration.

use std::sync::Arc;
use std::time::Instant;

use dashmm_amt::{CoalesceConfig, Transport};
use dashmm_core::{DashmmBuilder, Method};
use dashmm_kernels::{Kernel, KernelKind, Laplace, Yukawa};
use dashmm_net::{bootstrap, f64s_to_bytes, merge_sum_f64, Role, SocketTransport};
use dashmm_obs::json::{obj, Value};
use dashmm_obs::summary::{utilization_section, write_summary};
use dashmm_obs::{encode_rank_trace, merged_chrome_trace, validate_chrome_trace};
use dashmm_sim::{simulate, simulate_lattice, NetworkModel, SimConfig};

use crate::{cost_model, Opts, SchedMode, TransportMode};

/// Relative L2 error of `got` versus `want`.
fn rel_err(got: &[f64], want: &[f64]) -> f64 {
    let num: f64 = got.iter().zip(want).map(|(a, b)| (a - b) * (a - b)).sum();
    let den: f64 = want.iter().map(|b| b * b).sum();
    (num / den).sqrt()
}

/// If the options ask for the socket transport, run the measured
/// multi-process evaluation and return `true` (the caller should stop);
/// rank children never return.  With `with_sim`, rank 0 also prints the
/// simulator's prediction for the same machine next to the measurement.
/// `name` labels the exported observability artifacts (`--obs full`).
pub fn maybe_run(name: &str, opts: &Opts, with_sim: bool) -> bool {
    if opts.transport != TransportMode::Socket {
        return false;
    }
    if opts.localities < 2 {
        eprintln!("error: --transport socket needs --localities 2 or more");
        std::process::exit(2);
    }
    // The launcher re-executes this binary once per rank with the
    // environment inherited, so exporting the plan here reaches every
    // rank's transport.
    if let Some(spec) = &opts.faults {
        std::env::set_var(dashmm_amt::ENV_FAULTS, spec);
    }
    let cfg = if opts.no_coalesce {
        CoalesceConfig::disabled()
    } else {
        CoalesceConfig::default()
    };
    match bootstrap(opts.localities as u32, cfg) {
        Ok(Role::Launcher(report)) => {
            for (rank, st) in &report.statuses {
                if !st.success() {
                    eprintln!("locality {rank} failed: {st}");
                }
            }
            if !report.success() {
                std::process::exit(1);
            }
            println!(
                "all {} localities exited cleanly ({} workers each)",
                opts.localities, opts.workers
            );
            true
        }
        Ok(Role::Rank(transport)) => rank_main(name, opts, transport, with_sim),
        Err(e) => {
            eprintln!("multi-process bootstrap failed: {e}");
            std::process::exit(1);
        }
    }
}

fn rank_main(name: &str, opts: &Opts, transport: Arc<SocketTransport>, with_sim: bool) -> ! {
    let ok = match opts.kernel {
        KernelKind::Laplace => rank_eval(name, opts, &transport, with_sim, Laplace),
        KernelKind::Yukawa(lam) => rank_eval(name, opts, &transport, with_sim, Yukawa::new(lam)),
    };
    // Every rank holds its sockets open until all are done comparing.
    transport.barrier().expect("final barrier");
    transport.shutdown();
    std::process::exit(if ok { 0 } else { 1 });
}

fn rank_eval<K: Kernel>(
    name: &str,
    opts: &Opts,
    transport: &Arc<SocketTransport>,
    with_sim: bool,
    kernel: K,
) -> bool {
    let rank = transport.rank();
    let (sources, targets, charges) = opts.ensembles();
    let eval = DashmmBuilder::new(kernel.clone())
        .method(Method::AdvancedFmm)
        .threshold(opts.threshold)
        .machine(opts.localities, opts.workers)
        .obs(opts.obs)
        .schedule(opts.sched.policy())
        .transport(Arc::clone(transport) as Arc<dyn Transport>)
        .build(&sources, &charges, &targets);
    let t0 = Instant::now();
    let out = eval.evaluate();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Merge the partial potentials (each rank holds only its T boxes).
    let parts = transport
        .gather(&f64s_to_bytes(&out.potentials))
        .expect("potential gather");
    // Total measured traffic across ranks.
    let m = transport.metrics();
    let my_traffic = f64s_to_bytes(&[
        transport.stats().parcels_sent as f64,
        m.per_dest.iter().map(|d| d.bytes).sum::<u64>() as f64,
    ]);
    let traffic = transport.gather(&my_traffic).expect("traffic gather");
    println!("{}", m.digest(rank));

    // Gather every rank's span trace at rank 0 (collective, so all ranks
    // participate even though only rank 0 keeps the result).  Each rank
    // records against its own monotonic clock; the unix-epoch anchor
    // captured at run start aligns them into one merged timeline.
    let trace_parts = if opts.obs.spans() {
        let blob = encode_rank_trace(rank, out.report.run_start_unix_ns, &out.report.trace);
        transport.gather(&blob).expect("trace gather")
    } else {
        None
    };

    let mut ok = true;
    if let Some(parts) = parts {
        // Rank 0: verify and report.
        let merged = merge_sum_f64(&parts);
        let reference = DashmmBuilder::new(kernel)
            .method(Method::AdvancedFmm)
            .threshold(opts.threshold)
            .machine(1, opts.workers)
            .build(&sources, &charges, &targets)
            .evaluate();
        let e = rel_err(&merged, &reference.potentials);
        ok &= e < 1e-12;
        println!(
            "[rank 0] merged potentials vs single-process: rel err {e:.2e} [{}]",
            if e < 1e-12 { "ok" } else { "MISMATCH" }
        );
        if opts.sched == SchedMode::Lattice {
            // SPMD / sim parity: the measured run's lattice fingerprint
            // must match a fresh rank-independent computation over the
            // same DAG (the value the simulator uses too).
            let sim_fp = dashmm_core::PriorityLattice::compute(
                eval.dag(),
                &dashmm_core::LatticeHint::uniform(),
            )
            .fingerprint();
            let measured_fp = out.lattice_fingerprint;
            let parity = measured_fp == Some(sim_fp);
            ok &= parity;
            println!(
                "[rank 0] lattice fingerprint parity: measured {:016x} vs sim {:016x} [{}]",
                measured_fp.unwrap_or(0),
                sim_fp,
                if parity { "ok" } else { "MISMATCH" }
            );
        }
        let communicated = m.per_dest.iter().any(|d| d.parcels > 0 && d.frames > 0);
        ok &= communicated;
        println!(
            "[rank 0] per-destination comm metrics nonzero [{}]",
            if communicated { "ok" } else { "MISMATCH" }
        );
        if !opts.no_coalesce {
            // The batching *ratio* depends on how bursty the run is (small
            // problems drain parcels one at a time), so the check is that
            // the coalescer itself produced the frames — no Unbatched
            // flushes — not a ratio threshold.
            use dashmm_net::FlushReason;
            let unbatched = m.flush_reasons[FlushReason::Unbatched as usize];
            let coalesced: u64 = m.flush_reasons.iter().sum::<u64>() - unbatched;
            let batched = coalesced > 0 && unbatched == 0;
            ok &= batched;
            println!(
                "[rank 0] coalescing active: {:.1} parcels/frame, {coalesced} coalesced flushes [{}]",
                m.mean_batch(),
                if batched { "ok" } else { "MISMATCH" }
            );
        }
        let sums = merge_sum_f64(&traffic.expect("rank 0 gets traffic parts"));
        let (msgs, bytes) = (sums[0] as u64, sums[1] as u64);
        println!("[rank 0] measured: {wall_ms:.1} ms wall, {msgs} parcels, {bytes} payload bytes");
        if let Some(blobs) = trace_parts {
            let _ = std::fs::create_dir_all("results");
            let path = std::path::Path::new("results").join(format!("{name}_socket_trace.json"));
            match merged_chrome_trace(&blobs) {
                Ok(json) => {
                    let valid = validate_chrome_trace(&json).is_ok();
                    ok &= valid;
                    let written = std::fs::write(&path, &json).is_ok();
                    ok &= written;
                    println!(
                        "[rank 0] merged {}-rank clock-aligned trace -> {} [{}]",
                        opts.localities,
                        path.display(),
                        if valid && written { "ok" } else { "MISMATCH" }
                    );
                }
                Err(e) => {
                    ok = false;
                    println!("[rank 0] trace merge failed: {e} [MISMATCH]");
                }
            }
        }
        if opts.obs.enabled() {
            let mut sections = vec![
                (
                    "workload",
                    obj(vec![
                        ("name", Value::from(name)),
                        ("n", Value::from(opts.n)),
                        ("localities", Value::from(opts.localities)),
                        ("workers", Value::from(opts.workers)),
                        ("wall_ms", Value::from(wall_ms)),
                    ]),
                ),
                ("comm", m.to_json()),
            ];
            if opts.obs.spans() {
                sections.push(("utilization", utilization_section(&out.report.trace, 100)));
            }
            let path = std::path::Path::new("results").join(format!("{name}_socket_summary.json"));
            match write_summary(&path, &obj(sections)) {
                Ok(()) => println!("[rank 0] wrote {}", path.display()),
                Err(e) => eprintln!("[rank 0] failed to write {}: {e}", path.display()),
            }
        }
        if with_sim {
            let cost = cost_model(opts, opts.cost);
            let mut net = NetworkModel::gemini();
            net.coalesce = transport.coalesce_config();
            let sim_cfg = SimConfig {
                localities: opts.localities,
                cores_per_locality: opts.workers,
                priority: opts.sched == SchedMode::Binary,
                trace: false,
                levelwise: false,
            };
            let sim = if opts.sched == SchedMode::Lattice {
                let lat = dashmm_core::PriorityLattice::compute(
                    eval.dag(),
                    &dashmm_core::LatticeHint::uniform(),
                );
                simulate_lattice(eval.dag(), &cost, &net, &sim_cfg, &lat)
            } else {
                simulate(eval.dag(), &cost, &net, &sim_cfg)
            };
            println!(
                "[rank 0] simulated: {:.1} ms makespan, {} messages, {} bytes \
                 (same DAG, distribution and coalescing config)",
                sim.makespan_us / 1e3,
                sim.messages,
                sim.bytes
            );
        }
    }
    ok
}
