//! Shared harness machinery for the table/figure binaries.
//!
//! Every binary regenerates one table or figure of the paper (see
//! `DESIGN.md` for the experiment index).  They share workload
//! construction, a tiny CLI, cost-model calibration from traced runs, and
//! the paper's reference numbers for side-by-side printing.

pub mod obsout;
pub mod opbench;
pub mod report;
pub mod service;
pub mod socket;

use std::sync::Arc;

use dashmm_amt::ObsLevel;
use dashmm_core::{assemble, per_op_avg_us, Assembly, Method, Problem};
use dashmm_dag::{DistributionPolicy, FmmPolicy, NodeClass};
use dashmm_expansion::{AccuracyParams, OperatorLibrary};
use dashmm_kernels::{Kernel, KernelKind, Laplace, Yukawa};
use dashmm_sim::CostModel;
use dashmm_tree::{BuildParams, Distribution, Point3};

/// Command-line options shared by the harness binaries.
#[derive(Clone, Debug)]
pub struct Opts {
    /// Number of sources (= number of targets), default scaled for a
    /// single-host run; the paper used 30–60 M on a Cray.
    pub n: usize,
    /// Point distribution.
    pub dist: Distribution,
    /// Interaction kernel.
    pub kernel: KernelKind,
    /// Refinement threshold (paper: 60).
    pub threshold: usize,
    /// RNG seed.
    pub seed: u64,
    /// Disable parcel coalescing (ablation).
    pub no_coalesce: bool,
    /// Cost-model selection for the simulator binaries.
    pub cost: CostMode,
    /// Localities for a measured (multi-process) run.
    pub localities: usize,
    /// Workers per locality for a measured run.
    pub workers: usize,
    /// How localities are realised in a measured run.
    pub transport: TransportMode,
    /// Observability level for measured runs (`--obs off|counters|full`).
    pub obs: ObsLevel,
    /// Maximum tolerated full-tracing overhead in percent (`--obs-gate`);
    /// the observability self-check exits nonzero beyond it.
    pub obs_gate: Option<f64>,
    /// Fault-plan spec for measured runs (`--faults SPEC`, see
    /// `dashmm_amt::FaultPlan`); exported as `DASHMM_FAULTS` so the
    /// re-executed rank processes inherit it.
    pub faults: Option<String>,
    /// Wall-clock budget in seconds for chaos runs (`--budget-s`); a
    /// watchdog aborts the process beyond it so a faulty run never hangs.
    pub budget_s: Option<u64>,
    /// Survive a mid-run locality kill (`--recover`, chaos only): fence
    /// the dead rank, re-own its DAG slice, and gate on the *recovered*
    /// answer instead of on a clean abort.
    pub recover: bool,
    /// Scheduling policy for measured runs (`--schedule fifo|binary|lattice`).
    pub sched: SchedMode,
    /// Promote the pipelined-scheduling shape checks (utilization troughs,
    /// critical-path shortening) to hard failures (`--trough-gate`).  Kept
    /// separate from `--obs-gate` because the trough shapes only hold at
    /// realistic problem sizes, while the tracing-overhead gate runs on
    /// tiny smoke workloads.
    pub trough_gate: bool,
}

/// Scheduling policy selector for measured runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedMode {
    /// No priorities (the paper's measured baseline).
    Fifo,
    /// The paper's proposed binary up-sweep priority.
    Binary,
    /// The computed priority lattice (uniform hint).
    Lattice,
}

impl SchedMode {
    /// Parse `fifo` / `binary` / `lattice`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fifo" => Some(SchedMode::Fifo),
            "binary" => Some(SchedMode::Binary),
            "lattice" => Some(SchedMode::Lattice),
            _ => None,
        }
    }

    /// The core scheduling policy this selector names.
    pub fn policy(self) -> dashmm_core::SchedPolicy {
        match self {
            SchedMode::Fifo => dashmm_core::SchedPolicy::Fifo,
            SchedMode::Binary => dashmm_core::SchedPolicy::Binary,
            SchedMode::Lattice => {
                dashmm_core::SchedPolicy::Lattice(dashmm_core::LatticeHint::uniform())
            }
        }
    }
}

/// How localities are realised when a binary actually evaluates (rather
/// than simulates).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportMode {
    /// All localities inside this process (threads only).
    Shared,
    /// One OS process per locality over loopback TCP (`dashmm-net`).
    Socket,
}

impl TransportMode {
    /// Parse `shared` / `socket`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "shared" => Some(TransportMode::Shared),
            "socket" => Some(TransportMode::Socket),
            _ => None,
        }
    }
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            n: 200_000,
            dist: Distribution::Cube,
            kernel: KernelKind::Laplace,
            threshold: 60,
            seed: 42,
            no_coalesce: false,
            cost: CostMode::Paper,
            localities: 2,
            workers: 2,
            transport: TransportMode::Shared,
            obs: ObsLevel::Off,
            obs_gate: None,
            faults: None,
            budget_s: None,
            recover: false,
            sched: SchedMode::Fifo,
            trough_gate: false,
        }
    }
}

impl Opts {
    /// Parse `--n`, `--dist`, `--kernel`, `--threshold`, `--seed`,
    /// `--no-coalesce`, `--cost`, `--localities`, `--workers`,
    /// `--transport`, `--obs`, `--obs-gate`, `--faults`, `--budget-s`,
    /// `--recover` from `std::env::args`.  Invalid usage prints a message
    /// and exits with status 2.
    pub fn parse() -> Self {
        let mut o = Opts::default();
        let args: Vec<String> = std::env::args().collect();
        let usage = |msg: &str| -> ! {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: {} [--n N] [--dist cube|sphere|plummer] \
       [--kernel laplace|yukawa[:λ]] [--threshold T] [--seed S] \
       [--cost paper|measured|paper-refreshed] [--no-coalesce] \
       [--localities L] [--workers W] [--transport shared|socket] \
       [--obs off|counters|full] [--obs-gate PCT] \
       [--faults SPEC] [--budget-s SECS] [--recover] \
       [--schedule fifo|binary|lattice] [--trough-gate]",
                args.first().map(String::as_str).unwrap_or("bench")
            );
            std::process::exit(2);
        };
        let mut i = 1;
        let value = |i: usize, flag: &str| -> &str {
            match args.get(i + 1) {
                Some(v) => v,
                None => usage(&format!("{flag} expects a value")),
            }
        };
        while i < args.len() {
            match args[i].as_str() {
                "--n" => {
                    o.n = value(i, "--n")
                        .parse()
                        .unwrap_or_else(|_| usage("--n expects an integer"));
                    i += 2;
                }
                "--dist" => {
                    o.dist = Distribution::parse(value(i, "--dist"))
                        .unwrap_or_else(|| usage("--dist expects cube|sphere|plummer"));
                    i += 2;
                }
                "--kernel" => {
                    o.kernel = KernelKind::parse(value(i, "--kernel"))
                        .unwrap_or_else(|| usage("--kernel expects laplace|yukawa[:λ]"));
                    i += 2;
                }
                "--threshold" => {
                    o.threshold = value(i, "--threshold")
                        .parse()
                        .unwrap_or_else(|_| usage("--threshold expects an integer"));
                    i += 2;
                }
                "--seed" => {
                    o.seed = value(i, "--seed")
                        .parse()
                        .unwrap_or_else(|_| usage("--seed expects an integer"));
                    i += 2;
                }
                "--no-coalesce" => {
                    o.no_coalesce = true;
                    i += 1;
                }
                "--cost" => {
                    o.cost = CostMode::parse(value(i, "--cost"))
                        .unwrap_or_else(|| usage("--cost expects paper|measured|paper-refreshed"));
                    i += 2;
                }
                "--localities" => {
                    o.localities = value(i, "--localities")
                        .parse()
                        .unwrap_or_else(|_| usage("--localities expects an integer"));
                    i += 2;
                }
                "--workers" => {
                    o.workers = value(i, "--workers")
                        .parse()
                        .unwrap_or_else(|_| usage("--workers expects an integer"));
                    i += 2;
                }
                "--transport" => {
                    o.transport = TransportMode::parse(value(i, "--transport"))
                        .unwrap_or_else(|| usage("--transport expects shared|socket"));
                    i += 2;
                }
                "--obs" => {
                    o.obs = ObsLevel::parse(value(i, "--obs"))
                        .unwrap_or_else(|| usage("--obs expects off|counters|full"));
                    i += 2;
                }
                "--obs-gate" => {
                    o.obs_gate = Some(
                        value(i, "--obs-gate")
                            .parse()
                            .unwrap_or_else(|_| usage("--obs-gate expects a percentage")),
                    );
                    i += 2;
                }
                "--faults" => {
                    let spec = value(i, "--faults");
                    if let Err(e) = dashmm_amt::FaultPlan::parse(spec) {
                        usage(&format!("--faults: {e}"));
                    }
                    o.faults = Some(spec.to_string());
                    i += 2;
                }
                "--budget-s" => {
                    o.budget_s = Some(
                        value(i, "--budget-s")
                            .parse()
                            .unwrap_or_else(|_| usage("--budget-s expects seconds")),
                    );
                    i += 2;
                }
                "--recover" => {
                    o.recover = true;
                    i += 1;
                }
                "--schedule" => {
                    o.sched = SchedMode::parse(value(i, "--schedule"))
                        .unwrap_or_else(|| usage("--schedule expects fifo|binary|lattice"));
                    i += 2;
                }
                "--trough-gate" => {
                    o.trough_gate = true;
                    i += 1;
                }
                other => usage(&format!("unknown option {other}")),
            }
        }
        o
    }

    /// Generate the two (distinct) ensembles, as in the paper: same size,
    /// same distribution, different draws.
    pub fn ensembles(&self) -> (Vec<Point3>, Vec<Point3>, Vec<f64>) {
        let sources = self.dist.generate(self.n, self.seed);
        let targets = self.dist.generate(self.n, self.seed + 1);
        let charges: Vec<f64> = (0..self.n)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        (sources, targets, charges)
    }
}

/// A fully assembled (advanced-FMM) workload: problem, tables, DAG.
pub struct Workload {
    /// The problem (dual tree + charges).
    pub problem: Arc<Problem>,
    /// The explicit DAG assembly.
    pub asm: Assembly,
    /// Description string for report headers.
    pub label: String,
}

/// Build the advanced-FMM explicit DAG for the options, distributing over
/// `localities` with the paper's FMM policy.
pub fn build_workload(opts: &Opts, localities: u32) -> Workload {
    match opts.kernel {
        KernelKind::Laplace => build_workload_k(opts, localities, Laplace),
        KernelKind::Yukawa(lam) => build_workload_k(opts, localities, Yukawa::new(lam)),
    }
}

fn build_workload_k<K: Kernel>(opts: &Opts, localities: u32, kernel: K) -> Workload {
    let (sources, targets, charges) = opts.ensembles();
    let problem = Arc::new(Problem::new(
        &sources,
        &charges,
        &targets,
        BuildParams {
            threshold: opts.threshold,
            max_level: 20,
        },
    ));
    let kernel_name = kernel.name();
    let lib = OperatorLibrary::new(
        kernel,
        AccuracyParams::three_digit(),
        problem.tree.domain().side(),
        true,
    );
    let mut asm = assemble(&problem, Method::AdvancedFmm, &lib);
    distribute(&problem, &mut asm, localities);
    let label = format!(
        "{:?} {} n={} threshold={}",
        opts.dist, kernel_name, opts.n, opts.threshold
    );
    Workload {
        problem,
        asm,
        label,
    }
}

/// (Re-)distribute an assembly over a locality count with the FMM policy.
pub fn distribute(problem: &Problem, asm: &mut Assembly, localities: u32) {
    let src_n = problem.tree.source().points().len();
    let tgt_n = problem.tree.target().points().len();
    let owner = |class: NodeClass, box_id: u32| -> u32 {
        match class {
            NodeClass::S | NodeClass::M | NodeClass::Is => dashmm_core::block_owner(
                problem.tree.source().node(box_id).first,
                src_n,
                localities,
            ),
            _ => dashmm_core::block_owner(
                problem.tree.target().node(box_id).first,
                tgt_n,
                localities,
            ),
        }
    };
    FmmPolicy::default().assign(&mut asm.dag, localities, &owner);
}

/// How the simulator's per-operator costs are chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostMode {
    /// The paper's Table II timings as the Laplace baseline; for Yukawa the
    /// baseline is scaled per operator by the *measured* Yukawa/Laplace
    /// ratio of this implementation.  This keeps absolute task granularity
    /// faithful to the paper's machine (so starvation widths are
    /// comparable) while the grain-size contrast between kernels comes
    /// from real measurements.
    Paper,
    /// Costs measured entirely on this host from traced execution.  Note
    /// that this implementation's plane-wave quadratures are several times
    /// longer than the hand-optimised tables of the original (see
    /// DESIGN.md), which makes the bridge operators relatively heavier.
    Measured,
    /// The paper baseline with the particle-class rows (`S2T`, `S2M`,
    /// `S2L`, `L2T`, `M2T`) replaced by this host's measured SoA-engine
    /// costs at the workload's leaf occupancy — the vectorized near-field
    /// engine changes exactly those entries, so this mode shows how the
    /// paper's machine balance shifts under the batched particle path
    /// while keeping the expansion-operator granularity comparable.
    PaperRefreshed,
}

impl CostMode {
    /// Parse `paper` / `measured` / `paper-refreshed`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "paper" => Some(CostMode::Paper),
            "measured" => Some(CostMode::Measured),
            "paper-refreshed" => Some(CostMode::PaperRefreshed),
            _ => None,
        }
    }
}

/// Measure the particle-class operators through the SoA tile engine at
/// leaf occupancy `leaf` and splice the per-edge costs into `base` (the
/// simulator's particle-cost recalibration; see
/// [`CostModel::with_particle_us`] for which rows change).
pub fn refresh_particle_costs(base: CostModel, kernel: KernelKind, leaf: usize) -> CostModel {
    // Few repetitions: this runs at simulation setup, not in a bench loop.
    let reps = opbench::default_reps().min(7);
    let cases = match kernel {
        KernelKind::Laplace => opbench::particle_kernel_cases(&Laplace, "laplace", leaf, reps),
        KernelKind::Yukawa(lam) => {
            opbench::particle_kernel_cases(&Yukawa::new(lam), "yukawa", leaf, reps)
        }
    };
    let us_per_edge = |op: &str| -> f64 {
        let c = cases.iter().find(|c| c.op == op).expect("case present");
        // `S→T` measures a whole fused near-field list; the simulator
        // charges per DAG edge (one source box), so divide by the list
        // length implied by the pair count.
        let edges = if op == "S2T" {
            c.pairs / (c.points * c.points)
        } else {
            1
        };
        c.batched_ns / edges as f64 / 1000.0
    };
    base.with_particle_us(us_per_edge("S2T"), us_per_edge("S2M"), us_per_edge("L2T"))
}

/// Produce the simulator cost model for a workload under a [`CostMode`].
pub fn cost_model(opts: &Opts, mode: CostMode) -> CostModel {
    match mode {
        CostMode::Measured => calibrate_cost_model(opts, 30_000),
        CostMode::PaperRefreshed => {
            let base = cost_model(opts, CostMode::Paper);
            refresh_particle_costs(base, opts.kernel, opts.threshold)
        }
        CostMode::Paper => {
            let base = CostModel::paper_table2();
            match opts.kernel {
                KernelKind::Laplace => base,
                KernelKind::Yukawa(_) => {
                    // Measured per-operator grain-size ratios.
                    let lap = calibrate_cost_model(
                        &Opts {
                            kernel: KernelKind::Laplace,
                            ..opts.clone()
                        },
                        20_000,
                    );
                    let yuk = calibrate_cost_model(opts, 20_000);
                    let mut scaled = base.clone();
                    for i in 0..scaled.op_us.len() {
                        let ratio = (yuk.op_us[i] / lap.op_us[i]).clamp(1.0, 8.0);
                        scaled.op_us[i] *= ratio;
                    }
                    scaled
                }
            }
        }
    }
}

/// Calibrate a [`CostModel`] by running a smaller traced evaluation of the
/// same kernel/distribution on the real runtime and averaging per-operator
/// execution times.  Classes the run never exercised fall back to the
/// paper's Table II values.
pub fn calibrate_cost_model(opts: &Opts, calib_n: usize) -> CostModel {
    let calib = Opts {
        n: calib_n.min(opts.n),
        ..opts.clone()
    };
    let (sources, targets, charges) = calib.ensembles();
    let out = match calib.kernel {
        KernelKind::Laplace => dashmm_core::DashmmBuilder::new(Laplace)
            .method(Method::AdvancedFmm)
            .threshold(calib.threshold)
            .machine(1, 1)
            .tracing(true)
            .build(&sources, &charges, &targets)
            .evaluate(),
        KernelKind::Yukawa(lam) => dashmm_core::DashmmBuilder::new(Yukawa::new(lam))
            .method(Method::AdvancedFmm)
            .threshold(calib.threshold)
            .machine(1, 1)
            .tracing(true)
            .build(&sources, &charges, &targets)
            .evaluate(),
    };
    let mut measured = per_op_avg_us(&out.report.trace);
    let fallback = CostModel::paper_table2();
    for (i, m) in measured.iter_mut().enumerate() {
        if *m == 0.0 {
            *m = fallback.op_us[i];
        }
    }
    CostModel::measured(measured, 1.0)
}

/// Print a header block for a harness binary.
pub fn banner(title: &str, detail: &str) {
    println!("==============================================================");
    println!("{title}");
    println!("{detail}");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_opts_sane() {
        let o = Opts::default();
        assert_eq!(o.threshold, 60, "paper's refinement threshold");
        assert_eq!(o.dist, Distribution::Cube);
    }

    #[test]
    fn cost_mode_parses_refreshed() {
        assert_eq!(
            CostMode::parse("paper-refreshed"),
            Some(CostMode::PaperRefreshed)
        );
    }

    #[test]
    fn particle_refresh_changes_only_particle_rows() {
        use dashmm_dag::EdgeOp;
        let base = CostModel::paper_table2();
        // Tiny leaf so the measurement stays cheap in the test suite.
        let m = refresh_particle_costs(base.clone(), KernelKind::Laplace, 16);
        for op in [
            EdgeOp::S2T,
            EdgeOp::S2M,
            EdgeOp::S2L,
            EdgeOp::L2T,
            EdgeOp::M2T,
        ] {
            assert!(m.edge_us(op) > 0.0, "{op:?} cost must be positive");
        }
        for op in [
            EdgeOp::M2M,
            EdgeOp::M2L,
            EdgeOp::L2L,
            EdgeOp::M2I,
            EdgeOp::I2I,
            EdgeOp::I2L,
        ] {
            assert_eq!(
                m.edge_us(op),
                base.edge_us(op),
                "{op:?} row must be untouched"
            );
        }
    }

    #[test]
    fn ensembles_distinct_same_size() {
        let o = Opts {
            n: 1000,
            ..Opts::default()
        };
        let (s, t, q) = o.ensembles();
        assert_eq!(s.len(), 1000);
        assert_eq!(t.len(), 1000);
        assert_eq!(q.len(), 1000);
        assert_ne!(s[0], t[0], "source and target ensembles are distinct");
    }

    #[test]
    fn workload_builds_and_validates() {
        let o = Opts {
            n: 3000,
            ..Opts::default()
        };
        let w = build_workload(&o, 4);
        w.asm.dag.validate().expect("valid DAG");
        // All localities used.
        let locs: std::collections::HashSet<u32> =
            w.asm.dag.nodes().iter().map(|n| n.locality).collect();
        assert!(locs.len() > 1, "expected multiple localities, got {locs:?}");
    }

    #[test]
    fn calibration_produces_positive_costs() {
        let o = Opts {
            n: 2000,
            ..Opts::default()
        };
        let cm = calibrate_cost_model(&o, 2000);
        for (i, &c) in cm.op_us.iter().enumerate() {
            assert!(c > 0.0, "op {i} has zero cost");
        }
    }
}
