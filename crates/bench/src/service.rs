//! Shared state for the `serve` / `load_test` binary pair.
//!
//! The load tester verifies every server response against a locally built
//! reference engine, so both processes must construct **bit-identical**
//! resident state and both sides of a request must agree on its target
//! batch.  This module is that common ground: one deterministic workload
//! description (`--points/--seed/--theta/--threshold`), one engine
//! constructor, and one per-request target generator keyed by
//! `(seed, client, request)`.

use std::sync::RwLock;

use dashmm_core::{ResidentConfig, ResidentFmm};
use dashmm_kernels::Laplace;
use dashmm_refit::{ChargeUpdate, Displacement};
use dashmm_tree::{uniform_cube, BuildParams};

/// The deterministic service workload both binaries rebuild.
#[derive(Clone, Copy, Debug)]
pub struct ServiceWorkload {
    /// Source count.
    pub points: usize,
    /// Seed for sources, charges and query batches.
    pub seed: u64,
    /// Barnes–Hut acceptance parameter.
    pub theta: f64,
    /// Octree refinement threshold.
    pub threshold: usize,
}

impl Default for ServiceWorkload {
    fn default() -> Self {
        ServiceWorkload {
            points: 20_000,
            seed: 42,
            theta: 0.5,
            threshold: 60,
        }
    }
}

impl ServiceWorkload {
    /// Alternating unit charges (same convention as the accuracy tests).
    pub fn charges(&self) -> Vec<f64> {
        (0..self.points)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect()
    }

    /// Build the resident engine this workload describes.  Called by the
    /// server once at startup and by the load tester for its reference.
    pub fn build_engine(&self) -> ResidentFmm<Laplace> {
        let sources = uniform_cube(self.points, self.seed);
        let charges = self.charges();
        let cfg = ResidentConfig {
            theta: self.theta,
            build: BuildParams {
                threshold: self.threshold,
                ..BuildParams::default()
            },
            ..ResidentConfig::default()
        };
        ResidentFmm::build(Laplace, &sources, &charges, cfg)
    }

    /// The target batch of request `req` from client `client`: both sides
    /// derive it from the workload seed, so the load tester never ships
    /// its reference targets over the wire.
    pub fn request_targets(&self, client: u32, req: u32, batch: usize) -> Vec<[f64; 3]> {
        use rand::distributions::{Distribution, Uniform};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // splitmix-style mix of (seed, client, req) into one stream seed.
        let mix = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((u64::from(client) << 32) | u64::from(req));
        let mut rng = StdRng::seed_from_u64(mix);
        let u = Uniform::new_inclusive(-1.0, 1.0);
        (0..batch)
            .map(|_| [u.sample(&mut rng), u.sample(&mut rng), u.sample(&mut rng)])
            .collect()
    }
}

/// A resident engine behind a reader–writer lock, servable *and*
/// steppable: queries take the read side (many concurrent tiles), a
/// [`StepSources`](dashmm_net::FrameKind::StepSources) update takes the
/// write side and refits the tree in place.  This is the lock the
/// [`StepEngine`](dashmm_net::StepEngine) contract asks the engine to
/// provide — queries admitted concurrently with a step land on one side
/// of it or the other.
pub struct SteppingResident(pub RwLock<ResidentFmm<Laplace>>);

impl SteppingResident {
    /// Wrap a built engine.
    pub fn new(fmm: ResidentFmm<Laplace>) -> Self {
        SteppingResident(RwLock::new(fmm))
    }
}

impl dashmm_net::EvalEngine for SteppingResident {
    fn evaluate(&self, targets: &[[f64; 3]], out: &mut [f64]) {
        self.0.read().expect("engine lock").evaluate(targets, out);
    }

    fn evaluate_traced(
        &self,
        targets: &[[f64; 3]],
        out: &mut [f64],
    ) -> dashmm_net::EngineBreakdown {
        let prof = self
            .0
            .read()
            .expect("engine lock")
            .evaluate_profiled(targets, out);
        dashmm_net::EngineBreakdown {
            m2t_us: prof.m2t_us,
            p2p_us: prof.p2p_us,
            far_pairs: prof.far_pairs,
            near_pairs: prof.near_pairs,
        }
    }
}

impl SteppingResident {
    fn apply_step(
        &self,
        moves: &[(u32, [f64; 3])],
        charges: &[(u32, f64)],
    ) -> Option<dashmm_core::StepReport> {
        let mut fmm = self.0.write().expect("engine lock");
        let n = fmm.num_sources() as u32;
        if moves
            .iter()
            .map(|(i, _)| *i)
            .chain(charges.iter().map(|(i, _)| *i))
            .any(|i| i >= n)
        {
            return None;
        }
        let moves: Vec<Displacement> = moves
            .iter()
            .map(|&(index, delta)| Displacement { index, delta })
            .collect();
        let charges: Vec<ChargeUpdate> = charges
            .iter()
            .map(|&(index, charge)| ChargeUpdate { index, charge })
            .collect();
        Some(fmm.step(&moves, &charges))
    }
}

impl dashmm_net::StepEngine for SteppingResident {
    fn step(&self, moves: &[(u32, [f64; 3])], charges: &[(u32, f64)]) -> bool {
        self.apply_step(moves, charges).is_some()
    }

    fn step_traced(
        &self,
        moves: &[(u32, [f64; 3])],
        charges: &[(u32, f64)],
    ) -> dashmm_net::StepOutcome {
        let t0 = std::time::Instant::now();
        match self.apply_step(moves, charges) {
            Some(report) => dashmm_net::StepOutcome {
                applied: true,
                reused_edges: report.dag.reused_edges,
                invalidated_edges: report.dag.invalidated_edges,
                total_us: t0.elapsed().as_secs_f64() * 1e6,
            },
            None => dashmm_net::StepOutcome {
                applied: false,
                reused_edges: 0,
                invalidated_edges: 0,
                total_us: t0.elapsed().as_secs_f64() * 1e6,
            },
        }
    }
}

/// The ready line `serve` prints once it is listening; `load_test` parses
/// the port out of it.
pub const READY_PREFIX: &str = "SERVE ready port=";

/// Parse the port from a [`READY_PREFIX`] line.
pub fn parse_ready_line(line: &str) -> Option<u16> {
    let rest = line.strip_prefix(READY_PREFIX)?;
    rest.split_whitespace().next()?.parse().ok()
}

#[cfg(test)]
mod service_tests {
    use super::*;

    #[test]
    fn request_targets_are_deterministic_and_distinct() {
        let w = ServiceWorkload::default();
        let a = w.request_targets(3, 7, 16);
        let b = w.request_targets(3, 7, 16);
        let c = w.request_targets(3, 8, 16);
        assert_eq!(a, b, "same (client, req) must reproduce");
        assert_ne!(a, c, "different requests must differ");
        assert!(a.iter().flatten().all(|x| x.abs() <= 1.0));
    }

    #[test]
    fn stepping_resident_serves_and_steps() {
        use dashmm_net::{EvalEngine as _, StepEngine as _};
        let w = ServiceWorkload {
            points: 2000,
            ..ServiceWorkload::default()
        };
        let engine = SteppingResident::new(w.build_engine());
        let targets = w.request_targets(0, 0, 8);
        let mut before = vec![0.0; 8];
        engine.evaluate(&targets, &mut before);
        // An out-of-range index is rejected and nothing is applied.
        assert!(!engine.step(&[(u32::MAX, [0.0; 3])], &[]));
        let mut same = vec![0.0; 8];
        engine.evaluate(&targets, &mut same);
        assert_eq!(before, same);
        // A real update is applied and visible to the next query.
        assert!(engine.step(&[(0, [0.01, 0.0, 0.0])], &[(1, 3.0)]));
        let mut after = vec![0.0; 8];
        engine.evaluate(&targets, &mut after);
        assert_ne!(before, after, "step must change the answers");
        // The stepped engine matches a from-scratch rebuild in the same
        // domain over the updated sources.
        let fmm = engine.0.read().unwrap();
        let fresh = ResidentFmm::build_in_domain(
            Laplace,
            &fmm.current_sources(),
            &fmm.current_charges(),
            ResidentConfig {
                theta: w.theta,
                build: BuildParams {
                    threshold: w.threshold,
                    ..BuildParams::default()
                },
                ..ResidentConfig::default()
            },
            *fmm.domain(),
        );
        let mut want = vec![0.0; 8];
        fresh.evaluate(&targets, &mut want);
        assert_eq!(after, want);
    }

    #[test]
    fn ready_line_roundtrip() {
        let line = format!("{}{} points=100 depth=3", READY_PREFIX, 54321);
        assert_eq!(parse_ready_line(&line), Some(54321));
        assert_eq!(parse_ready_line("garbage"), None);
    }
}
