//! The measured observability study shared by the harness binaries.
//!
//! With `--obs counters|full` a binary runs the workload on the *real*
//! runtime at the requested observability level and exports:
//!
//! * `results/<name>_trace.json` — Chrome Trace Event JSON (Perfetto /
//!   `chrome://tracing`), one track per worker (`--obs full` only),
//! * `results/<name>_run_summary.json` — the machine-readable run report
//!   (utilization Eq. 1–2, per-operator statistics, critical path, comm),
//! * a printed critical-path attribution over the executed DAG,
//! * a tracing-overhead self-check: interleaved best-of-N wall time at
//!   `--obs off` versus `--obs full`, gated by `--obs-gate PCT` in CI.

use std::path::PathBuf;

use dashmm_amt::ObsLevel;
use dashmm_core::{DashmmBuilder, EvalOutput, Method};
use dashmm_kernels::{Kernel, KernelKind, Laplace, Yukawa};
use dashmm_obs::json::{obj, Value};
use dashmm_obs::summary::{
    critical_path_section, per_op_section, per_op_stats, per_op_stats_from_counters,
    utilization_section, write_summary,
};
use dashmm_obs::{chrome_trace, critical_path, validate_chrome_trace};

use crate::Opts;

/// Intervals for the exported utilization section (paper: 100).
const INTERVALS: usize = 100;

/// Wall-time repetitions for the overhead self-check.
const OVERHEAD_REPS: usize = 3;

/// Run the observability study for `name` ("fig4", …) and return `false`
/// if the `--obs-gate` overhead threshold was exceeded (callers exit
/// nonzero).  No-op at `--obs off`.
pub fn obs_study(name: &str, opts: &Opts) -> bool {
    if !opts.obs.enabled() {
        return true;
    }
    match opts.kernel {
        KernelKind::Laplace => obs_study_k(name, opts, Laplace),
        KernelKind::Yukawa(lam) => obs_study_k(name, opts, Yukawa::new(lam)),
    }
}

fn obs_study_k<K: Kernel>(name: &str, opts: &Opts, kernel: K) -> bool {
    println!("\n--- observability (measured run, --obs {}) ---", opts.obs);
    let (sources, targets, charges) = opts.ensembles();
    let build = |obs: ObsLevel| {
        DashmmBuilder::new(kernel.clone())
            .method(Method::AdvancedFmm)
            .threshold(opts.threshold)
            .machine(1, opts.workers)
            .obs(obs)
            .build(&sources, &charges, &targets)
    };
    let eval = build(opts.obs);
    let out = eval.evaluate();
    println!(
        "n={} workers={}: {:.1} ms eval, {} tasks, {} span events ({} dropped)",
        opts.n,
        opts.workers,
        out.eval_ms,
        out.report.tasks,
        out.report.trace.all_events().count(),
        out.report.trace_dropped,
    );

    let stats = if opts.obs.spans() {
        per_op_stats(&out.report.trace)
    } else {
        per_op_stats_from_counters(&out.report.counters)
    };
    let mut sections: Vec<(&str, Value)> = vec![
        (
            "workload",
            obj(vec![
                ("name", Value::from(name)),
                ("n", Value::from(opts.n)),
                ("kernel", Value::from(format!("{:?}", opts.kernel))),
                ("dist", Value::from(format!("{:?}", opts.dist))),
                ("threshold", Value::from(opts.threshold)),
                ("workers", Value::from(opts.workers)),
                ("obs", Value::from(opts.obs.to_string())),
            ]),
        ),
        (
            "run",
            obj(vec![
                ("eval_ms", Value::from(out.eval_ms)),
                ("tasks", Value::from(out.report.tasks)),
                ("messages", Value::from(out.report.messages)),
                ("bytes", Value::from(out.report.bytes)),
                ("trace_dropped", Value::from(out.report.trace_dropped)),
            ]),
        ),
        ("per_op", per_op_section(&stats)),
    ];

    if opts.obs.spans() {
        let trace_path = results_path(&format!("{name}_trace.json"));
        let json = chrome_trace(&out.report.trace);
        match validate_chrome_trace(&json) {
            Ok(st) => {
                if std::fs::write(&trace_path, &json).is_ok() {
                    println!(
                        "wrote {} ({} spans, {} tracks)",
                        trace_path.display(),
                        st.spans,
                        st.processes
                    );
                }
            }
            Err(e) => eprintln!("chrome trace failed validation: {e}"),
        }
        sections.push((
            "utilization",
            utilization_section(&out.report.trace, INTERVALS),
        ));
        match critical_path(eval.dag(), &out.report.trace) {
            Some(cp) => {
                print!("{}", cp.render());
                sections.push(("critical_path", critical_path_section(&cp)));
            }
            None => println!("critical path: no edge-tagged spans in trace"),
        }
    }

    let summary_path = results_path(&format!("{name}_run_summary.json"));
    let summary = obj(sections.into_iter().collect());
    match write_summary(&summary_path, &summary) {
        Ok(()) => println!("wrote {}", summary_path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", summary_path.display()),
    }

    if opts.obs.spans() {
        // Interleave off/full repetitions so slow clock drift (CPU
        // frequency, page cache, a shared-runner neighbour) hits both
        // sides equally, then compare best-of-N.
        let off_eval = build(ObsLevel::Off);
        let mut off_ms = f64::INFINITY;
        let mut full_ms = f64::INFINITY;
        let _ = (off_eval.evaluate(), eval.evaluate()); // warm-up pair
        for _ in 0..OVERHEAD_REPS {
            off_ms = off_ms.min(off_eval.evaluate().eval_ms);
            full_ms = full_ms.min(eval.evaluate().eval_ms);
        }
        overhead_check(opts, off_ms, full_ms)
    } else {
        true
    }
}

/// Compare full-tracing wall time against `--obs off`; enforce
/// `--obs-gate` when given.
fn overhead_check(opts: &Opts, off_ms: f64, full_ms: f64) -> bool {
    let overhead = (full_ms / off_ms - 1.0) * 100.0;
    println!(
        "tracing overhead: best-of-{OVERHEAD_REPS} {:.1} ms (off) vs {:.1} ms (full) = {overhead:+.1}%",
        off_ms, full_ms
    );
    match opts.obs_gate {
        Some(gate) if overhead > gate => {
            println!("[MISMATCH] full tracing overhead {overhead:.1}% exceeds gate {gate:.1}%");
            false
        }
        Some(gate) => {
            println!("[ok] full tracing overhead within the {gate:.1}% gate");
            true
        }
        None => true,
    }
}

/// A path under `results/`, creating the directory on demand.
fn results_path(file: &str) -> PathBuf {
    let dir = PathBuf::from("results");
    let _ = std::fs::create_dir_all(&dir);
    dir.join(file)
}

/// Side channel for binaries that already hold an [`EvalOutput`] (table2):
/// write the shared `run_summary.json` sections from it.
pub fn write_measured_summary(name: &str, opts: &Opts, out: &EvalOutput) {
    let stats = if out.report.trace.is_empty() {
        per_op_stats_from_counters(&out.report.counters)
    } else {
        per_op_stats(&out.report.trace)
    };
    let mut sections = vec![
        (
            "workload",
            obj(vec![
                ("name", Value::from(name)),
                ("n", Value::from(opts.n)),
                ("kernel", Value::from(format!("{:?}", opts.kernel))),
                ("threshold", Value::from(opts.threshold)),
            ]),
        ),
        ("per_op", per_op_section(&stats)),
    ];
    if !out.report.trace.is_empty() {
        sections.push((
            "utilization",
            utilization_section(&out.report.trace, INTERVALS),
        ));
    }
    let path = results_path(&format!("{name}_run_summary.json"));
    let summary = obj(sections);
    match write_summary(&path, &summary) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}
