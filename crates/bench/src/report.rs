//! Report artifacts: CSV series for external plotting and quick ASCII
//! sparklines for terminal inspection.

use std::io::Write;
use std::path::Path;

/// Write a CSV file with a header row; creates parent directories.
pub fn write_csv(
    path: &Path,
    header: &[&str],
    rows: impl IntoIterator<Item = Vec<String>>,
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{}", header.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(())
}

/// Render a unicode sparkline of a series, normalised to its own maximum.
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
    values
        .iter()
        .map(|&v| {
            let idx = ((v / max) * 7.0).round().clamp(0.0, 7.0) as usize;
            BARS[idx]
        })
        .collect()
}

/// Downsample a series to `n` buckets by averaging (for 1-line sparklines
/// of 100-interval utilization curves).
pub fn downsample(values: &[f64], n: usize) -> Vec<f64> {
    assert!(n > 0);
    let chunk = values.len().div_ceil(n);
    values
        .chunks(chunk)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("dashmm_csv_test");
        let path = dir.join("x.csv");
        write_csv(
            &path,
            &["a", "b"],
            vec![vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let got = std::fs::read_to_string(&path).unwrap();
        assert_eq!(got, "a,b\n1,2\n3,4\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.ends_with('█'));
        assert!(s.starts_with('▁'));
    }

    #[test]
    fn downsample_averages() {
        let d = downsample(&[1.0, 3.0, 5.0, 7.0], 2);
        assert_eq!(d, vec![2.0, 6.0]);
        assert_eq!(downsample(&[1.0], 4), vec![1.0]);
    }
}
