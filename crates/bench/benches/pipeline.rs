//! Criterion benchmarks of the evaluation pipeline phases: tree
//! construction, interaction lists, explicit-DAG assembly, full DAG
//! evaluation (all methods), and the direct-summation oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dashmm_core::{assemble, DashmmBuilder, Method, Problem};
use dashmm_expansion::{AccuracyParams, OperatorLibrary};
use dashmm_kernels::{direct_sum, Laplace};
use dashmm_tree::{uniform_cube, BuildParams, DualTree};

const N: usize = 20_000;

fn pipeline(c: &mut Criterion) {
    let sources = uniform_cube(N, 1);
    let targets = uniform_cube(N, 2);
    let charges = vec![1.0; N];
    let params = BuildParams {
        threshold: 60,
        max_level: 20,
    };

    let mut g = c.benchmark_group("pipeline");
    g.bench_function(BenchmarkId::new("dual_tree_build", N), |b| {
        b.iter(|| DualTree::build(&sources, &targets, params));
    });
    let tree = DualTree::build(&sources, &targets, params);
    g.bench_function(BenchmarkId::new("interaction_lists", N), |b| {
        b.iter(|| tree.interaction_lists());
    });
    let problem = Problem::new(&sources, &charges, &targets, params);
    let lib = OperatorLibrary::new(
        Laplace,
        AccuracyParams::three_digit(),
        problem.tree.domain().side(),
        true,
    );
    lib.tables(3); // pre-build the hot level so assembly timing is pure
    g.bench_function(BenchmarkId::new("assemble_advanced", N), |b| {
        b.iter(|| assemble(&problem, Method::AdvancedFmm, &lib));
    });
    g.finish();

    let mut g = c.benchmark_group("evaluate");
    g.sample_size(10);
    let small = 4_000;
    let s2 = uniform_cube(small, 3);
    let t2 = uniform_cube(small, 4);
    let q2 = vec![1.0; small];
    for (label, method) in [
        ("advanced_fmm", Method::AdvancedFmm),
        ("basic_fmm", Method::BasicFmm),
        ("barnes_hut", Method::BarnesHut { theta: 0.5 }),
    ] {
        let eval = DashmmBuilder::new(Laplace)
            .method(method)
            .threshold(60)
            .machine(1, 2)
            .build(&s2, &q2, &t2);
        g.bench_function(BenchmarkId::new(label, small), |b| {
            b.iter(|| eval.evaluate());
        });
    }
    let sp: Vec<[f64; 3]> = s2.iter().map(|p| [p.x, p.y, p.z]).collect();
    let tp: Vec<[f64; 3]> = t2.iter().map(|p| [p.x, p.y, p.z]).collect();
    g.bench_function(BenchmarkId::new("direct_oracle", small), |b| {
        b.iter(|| direct_sum(&Laplace, &sp, &q2, &tp, 1));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = pipeline
}
criterion_main!(benches);
