//! Criterion micro-benchmarks of every FMM operator, per kernel — the
//! per-edge costs behind Table II and the simulator's cost model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dashmm_expansion::{ops, AccuracyParams, BatchWorkspace, LevelTables};
use dashmm_kernels::{Kernel, Laplace, Yukawa};
use dashmm_tree::{Direction, Point3};

const SIDE: f64 = 0.25;

fn cloud(center: Point3, side: f64, n: usize) -> (Vec<Point3>, Vec<f64>) {
    let mut state = 0x243f6a8885a308d3u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let pts = (0..n)
        .map(|_| center + Point3::new(next() * side, next() * side, next() * side))
        .collect();
    let charges = (0..n).map(|_| next()).collect();
    (pts, charges)
}

fn bench_kernel_ops<K: Kernel>(c: &mut Criterion, kernel: K) {
    let name = kernel.name();
    let t = LevelTables::build(&kernel, &AccuracyParams::three_digit(), 3, SIDE, true);
    let n = t.expansion_len();
    let w = t.planewave_len();
    let center = Point3::ZERO;
    let (src, q) = cloud(center, SIDE, 60);
    let (tgt, _) = cloud(Point3::new(2.0 * SIDE, 0.0, 0.0), SIDE, 60);

    let mut ws = BatchWorkspace::new();
    let mut m = vec![0.0; n];
    ops::s2m(&kernel, &t, center, &src, &q, &mut ws, &mut m);
    let mut wv = vec![0.0; w];
    ops::m2i(&t, Direction::Up, &m, &mut wv);
    let fac = t.i2i(Direction::Up, Point3::new(0.0, 0.0, 2.0 * SIDE));
    // Warm the M2L cache so the bench measures application, not assembly.
    let m2l_mat = t.m2l(&kernel, (2, 0, 0));
    drop(m2l_mat);

    let mut g = c.benchmark_group(format!("ops/{name}"));
    g.bench_function(BenchmarkId::from_parameter("S2M"), |b| {
        let mut out = vec![0.0; n];
        let mut ws = BatchWorkspace::new();
        b.iter(|| ops::s2m(&kernel, &t, center, &src, &q, &mut ws, &mut out));
    });
    g.bench_function(BenchmarkId::from_parameter("M2M"), |b| {
        let mut out = vec![0.0; n];
        b.iter(|| ops::m2m(&t, 3, &m, &mut out));
    });
    g.bench_function(BenchmarkId::from_parameter("M2L"), |b| {
        let mut out = vec![0.0; n];
        b.iter(|| ops::m2l(&kernel, &t, (2, 0, 0), &m, &mut out));
    });
    g.bench_function(BenchmarkId::from_parameter("M2I_6dir"), |b| {
        let mut out = vec![0.0; w];
        b.iter(|| {
            for d in Direction::ALL {
                ops::m2i(&t, d, &m, &mut out);
            }
        });
    });
    g.bench_function(BenchmarkId::from_parameter("I2I"), |b| {
        let mut out = vec![0.0; w];
        b.iter(|| ops::i2i_apply(&fac, &wv, &mut out));
    });
    g.bench_function(BenchmarkId::from_parameter("I2L_6dir"), |b| {
        let mut out = vec![0.0; n];
        b.iter(|| {
            for d in Direction::ALL {
                ops::i2l(&t, d, &wv, &mut out);
            }
        });
    });
    g.bench_function(BenchmarkId::from_parameter("L2L"), |b| {
        let mut out = vec![0.0; n];
        b.iter(|| ops::l2l(&t, 5, &m, &mut out));
    });
    g.bench_function(BenchmarkId::from_parameter("L2T"), |b| {
        let mut out = vec![0.0; tgt.len()];
        let mut ws = BatchWorkspace::new();
        b.iter(|| {
            ops::l2t(
                &kernel,
                &t,
                Point3::new(2.0 * SIDE, 0.0, 0.0),
                &m,
                &tgt,
                &mut ws,
                &mut out,
            )
        });
    });
    g.bench_function(BenchmarkId::from_parameter("S2T_60x60"), |b| {
        let mut out = vec![0.0; tgt.len()];
        let mut ws = BatchWorkspace::new();
        b.iter(|| ops::p2p(&kernel, &src, &q, &tgt, &mut ws, &mut out));
    });
    g.finish();
}

fn operators(c: &mut Criterion) {
    bench_kernel_ops(c, Laplace);
    bench_kernel_ops(c, Yukawa::new(1.0));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(1));
    targets = operators
}
criterion_main!(benches);
