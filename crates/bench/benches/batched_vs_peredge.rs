//! Criterion comparison of the per-edge operator loop against the batched
//! (blocked multi-RHS GEMM) entry points, at several batch sizes.
//!
//! The per-edge side runs the public per-edge operator — including the
//! operator-cache lookup the runtime pays on every edge — and the batched
//! side pays for gather and column scatter, so the comparison reflects the
//! real hot-path alternatives in `dashmm-core`'s executor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dashmm_bench::opbench::{bench_tables, random_expansions};
use dashmm_expansion::{batch, ops, BatchWorkspace};
use dashmm_kernels::{Kernel, Laplace, Yukawa};

const BATCH_SIZES: [usize; 3] = [32, 256, 1024];

fn bench_kernel<K: Kernel>(c: &mut Criterion, kernel: K) {
    let name = kernel.name();
    let t = bench_tables(&kernel);
    let n = t.expansion_len();
    let offset = (2i8, 1i8, 0i8);
    drop(t.m2l(&kernel, offset)); // warm the M2L cache

    let mut g = c.benchmark_group(format!("batched_vs_peredge/{name}"));
    for &edges in &BATCH_SIZES {
        let srcs = random_expansions(edges, n, edges as u64);
        let refs: Vec<&[f64]> = srcs.iter().map(|s| s.as_slice()).collect();
        let mut outs = vec![vec![0.0; n]; edges];

        g.bench_function(BenchmarkId::new("m2l_per_edge", edges), |b| {
            b.iter(|| {
                for (src, out) in srcs.iter().zip(outs.iter_mut()) {
                    out.fill(0.0);
                    ops::m2l(&kernel, &t, offset, src, out);
                }
            })
        });
        let mut ws = BatchWorkspace::new();
        g.bench_function(BenchmarkId::new("m2l_batched", edges), |b| {
            b.iter(|| {
                batch::m2l_batch(&kernel, &t, offset, &refs, &mut ws, |i, col| {
                    outs[i].copy_from_slice(col)
                })
            })
        });

        g.bench_function(BenchmarkId::new("m2m_per_edge", edges), |b| {
            b.iter(|| {
                for (src, out) in srcs.iter().zip(outs.iter_mut()) {
                    out.fill(0.0);
                    ops::m2m(&t, 3, src, out);
                }
            })
        });
        let mut ws = BatchWorkspace::new();
        g.bench_function(BenchmarkId::new("m2m_batched", edges), |b| {
            b.iter(|| {
                batch::m2m_batch(&t, 3, &refs, &mut ws, |i, col| outs[i].copy_from_slice(col))
            })
        });
    }
    g.finish();
}

fn batched_vs_peredge(c: &mut Criterion) {
    bench_kernel(c, Laplace);
    bench_kernel(c, Yukawa::new(1.0));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(1));
    targets = batched_vs_peredge
}
criterion_main!(benches);
