//! Criterion bench of the SoA particle-operator engine: scalar per-pair
//! replicas of the old loops vs the batched tile paths, for the fused
//! near field (`S→T`), the check-surface projection (`S→M`), and local
//! evaluation at targets (`L→T`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dashmm_bench::opbench;
use dashmm_kernels::{Kernel, Laplace, Yukawa};

fn bench_particle<K: Kernel + Clone>(c: &mut Criterion, kernel: K) {
    let name = kernel.name();
    let leaf = 60;
    let mut g = c.benchmark_group(format!("particle_ops/{name}"));
    // Each opbench case runs both sides once per criterion iteration; the
    // case constructors are cheap relative to the measured bodies, so the
    // split is reported through the case's own best-of timing.
    for (op, runner) in [
        (
            "S2T_fused",
            Box::new({
                let k = kernel.clone();
                move || opbench::s2t_case(&k, "bench", leaf, 26, 1).batched_ns
            }) as Box<dyn Fn() -> f64>,
        ),
        (
            "S2T_scalar",
            Box::new({
                let k = kernel.clone();
                move || opbench::s2t_case(&k, "bench", leaf, 26, 1).scalar_ns
            }),
        ),
    ] {
        g.bench_function(BenchmarkId::from_parameter(op), |b| {
            b.iter(&runner);
        });
    }
    g.finish();

    // S2M / L2T through the shared tables.
    let t = opbench::bench_tables(&kernel);
    let mut g = c.benchmark_group(format!("particle_ops/{name}/surface"));
    g.bench_function(BenchmarkId::from_parameter("S2M"), |b| {
        b.iter(|| opbench::s2m_particle_case(&kernel, "bench", &t, leaf, 1).batched_ns);
    });
    g.bench_function(BenchmarkId::from_parameter("L2T"), |b| {
        b.iter(|| opbench::l2t_particle_case(&kernel, "bench", &t, leaf, 1).batched_ns);
    });
    g.finish();
}

fn particle_ops(c: &mut Criterion) {
    bench_particle(c, Laplace);
    bench_particle(c, Yukawa::new(1.0));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(1));
    targets = particle_ops
}
criterion_main!(benches);
