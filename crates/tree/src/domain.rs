//! The computational domain: the smallest cube containing both ensembles.

use crate::Point3;

/// A cubic computational domain, described by its center and half-width.
///
/// Both the source and the target tree partition the *same* domain so that
/// boxes of either tree at the same level live on the same integer grid;
/// this is what makes adjacency and well-separatedness between the two trees
/// exact integer tests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Domain {
    center: Point3,
    half: f64,
}

impl Domain {
    /// Build a domain from an explicit center and half-width.
    pub fn new(center: Point3, half: f64) -> Self {
        assert!(
            half > 0.0 && half.is_finite(),
            "domain half-width must be positive"
        );
        Domain { center, half }
    }

    /// The smallest cube (padded by `pad` relative units) enclosing every
    /// point of the given slices.  Padding keeps boundary points strictly
    /// inside the cube so floating-point grid classification is stable.
    pub fn containing(ensembles: &[&[Point3]], pad: f64) -> Self {
        let mut lo = Point3::new(f64::INFINITY, f64::INFINITY, f64::INFINITY);
        let mut hi = Point3::new(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY);
        let mut any = false;
        for pts in ensembles {
            for p in *pts {
                lo = lo.min(p);
                hi = hi.max(p);
                any = true;
            }
        }
        assert!(any, "cannot build a domain around zero points");
        let center = (lo + hi) * 0.5;
        let half = (hi - lo).norm_max() * 0.5 * (1.0 + pad);
        Domain::new(center, half.max(f64::MIN_POSITIVE.sqrt()))
    }

    /// Domain center.
    #[inline]
    pub fn center(&self) -> Point3 {
        self.center
    }

    /// Domain half-width.
    #[inline]
    pub fn half(&self) -> f64 {
        self.half
    }

    /// Full edge length of the root cube.
    #[inline]
    pub fn side(&self) -> f64 {
        2.0 * self.half
    }

    /// Side length of a box at `level` (level 0 is the root).
    #[inline]
    pub fn side_at(&self, level: u8) -> f64 {
        self.side() / (1u64 << level) as f64
    }

    /// Integer grid coordinates of the level-`level` box containing `p`,
    /// clamped into the grid (points on the upper boundary map inward).
    pub fn grid_coords(&self, p: &Point3, level: u8) -> (u32, u32, u32) {
        let n = 1u64 << level;
        let s = n as f64 / self.side();
        let f = |c: f64, c0: f64| -> u32 {
            let idx = ((c - (c0 - self.half)) * s).floor() as i64;
            idx.clamp(0, n as i64 - 1) as u32
        };
        (
            f(p.x, self.center.x),
            f(p.y, self.center.y),
            f(p.z, self.center.z),
        )
    }

    /// Center of the box with integer coordinates `(i, j, k)` at `level`.
    pub fn box_center(&self, level: u8, i: u32, j: u32, k: u32) -> Point3 {
        let side = self.side_at(level);
        let lo = self.center - Point3::new(self.half, self.half, self.half);
        lo + Point3::new(
            (i as f64 + 0.5) * side,
            (j as f64 + 0.5) * side,
            (k as f64 + 0.5) * side,
        )
    }

    /// Whether `p` lies inside the (closed) domain cube.
    pub fn contains(&self, p: &Point3) -> bool {
        (*p - self.center).norm_max() <= self.half * (1.0 + 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containing_is_tight_cube() {
        let pts = vec![Point3::new(0.0, 0.0, 0.0), Point3::new(2.0, 1.0, 0.5)];
        let d = Domain::containing(&[&pts], 0.0);
        assert_eq!(d.center(), Point3::new(1.0, 0.5, 0.25));
        assert_eq!(d.half(), 1.0); // driven by the x-extent
        for p in &pts {
            assert!(d.contains(p));
        }
    }

    #[test]
    fn containing_two_ensembles() {
        let a = vec![Point3::new(-1.0, 0.0, 0.0)];
        let b = vec![Point3::new(3.0, 0.0, 0.0)];
        let d = Domain::containing(&[&a, &b], 0.0);
        assert_eq!(d.center().x, 1.0);
        assert_eq!(d.half(), 2.0);
    }

    #[test]
    fn grid_roundtrip() {
        let d = Domain::new(Point3::ZERO, 1.0);
        for level in 0..6u8 {
            let n = 1u32 << level;
            for i in [0, n / 2, n - 1] {
                let c = d.box_center(level, i, 0, n - 1);
                let (gi, gj, gk) = d.grid_coords(&c, level);
                assert_eq!((gi, gj, gk), (i, 0, n - 1));
            }
        }
    }

    #[test]
    fn boundary_points_clamp_inward() {
        let d = Domain::new(Point3::ZERO, 1.0);
        let p = Point3::new(1.0, 1.0, 1.0); // exactly on the hi corner
        let (i, j, k) = d.grid_coords(&p, 3);
        assert_eq!((i, j, k), (7, 7, 7));
    }

    #[test]
    fn side_at_halves_per_level() {
        let d = Domain::new(Point3::ZERO, 4.0);
        assert_eq!(d.side_at(0), 8.0);
        assert_eq!(d.side_at(1), 4.0);
        assert_eq!(d.side_at(3), 1.0);
    }

    #[test]
    #[should_panic]
    fn empty_domain_panics() {
        let empty: Vec<Point3> = vec![];
        let _ = Domain::containing(&[&empty], 0.0);
    }
}
