//! Dual-tree traversal and interaction lists.
//!
//! Every target box `Bt` is connected to up to four lists of source boxes
//! (paper §II, Figure 1b):
//!
//! * `L1` (classically *U*): leaf source boxes **not** well-separated from a
//!   leaf `Bt` — handled by direct `S→T` interaction,
//! * `L2` (*V*): same-level source boxes well-separated from `Bt` whose
//!   parents are not well-separated from `Bt`'s parent — `M→L`, or the
//!   `M→I / I→I / I→L` chain in the advanced (merge-and-shift) method,
//! * `L3` (*W*): source boxes deeper than a leaf `Bt`, well-separated from
//!   `Bt` but with a parent that is not — `M→T`,
//! * `L4` (*X*): leaf source boxes shallower than `Bt`, well-separated from
//!   `Bt` but not from `Bt`'s parent — `S→L`.
//!
//! The traversal descends the source and the target tree in lockstep from the
//! root pair, so every well-separated pair is classified at the coarsest
//! valid level, exactly as in the classic adaptive FMM.  `L2` entries carry
//! the [`Direction`] used by the plane-wave intermediate expansions.

use crate::build::{BuildParams, Octree};
use crate::domain::Domain;
use crate::morton::MortonKey;
use crate::point::Point3;

/// One of the six axis directions used to partition `L2` for the plane-wave
/// (intermediate) expansions.  A source box is assigned to the direction
/// along which it is separated from the target by at least two box widths;
/// the plane-wave representation of its field converges for the target box
/// exactly when such an axis exists, which the `L2` definition guarantees.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Source lies at `+z` relative to the target (information travels down).
    Up,
    /// Source at `-z`.
    Down,
    /// Source at `+y`.
    North,
    /// Source at `-y`.
    South,
    /// Source at `+x`.
    East,
    /// Source at `-x`.
    West,
}

impl Direction {
    /// All six directions, in the priority order used for assignment.
    pub const ALL: [Direction; 6] = [
        Direction::Up,
        Direction::Down,
        Direction::North,
        Direction::South,
        Direction::East,
        Direction::West,
    ];

    /// Index in `0..6`.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Direction::Up => 0,
            Direction::Down => 1,
            Direction::North => 2,
            Direction::South => 3,
            Direction::East => 4,
            Direction::West => 5,
        }
    }

    /// The axis this direction is aligned with (0 = x, 1 = y, 2 = z).
    #[inline]
    pub fn axis(self) -> usize {
        match self {
            Direction::East | Direction::West => 0,
            Direction::North | Direction::South => 1,
            Direction::Up | Direction::Down => 2,
        }
    }

    /// Sign of the source-relative-to-target offset along [`Self::axis`].
    #[inline]
    pub fn sign(self) -> f64 {
        match self {
            Direction::Up | Direction::North | Direction::East => 1.0,
            _ => -1.0,
        }
    }

    /// The opposite direction.  An `L2` entry records where the *source*
    /// lies relative to the target; the plane-wave expansion serving it
    /// propagates the opposite way (toward the target), so translation
    /// frames use the opposite of the list direction.
    #[inline]
    pub fn opposite(self) -> Direction {
        match self {
            Direction::Up => Direction::Down,
            Direction::Down => Direction::Up,
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::East => Direction::West,
            Direction::West => Direction::East,
        }
    }

    /// Assign a direction from the same-level integer offset of the source
    /// box relative to the target box.  Returns `None` when no axis is
    /// separated by ≥ 2 (i.e. the boxes are adjacent — not an `L2` pair).
    pub fn from_offset(dx: i64, dy: i64, dz: i64) -> Option<Direction> {
        // Priority z, y, x matches the conventional up/down-first sweep.
        if dz >= 2 {
            Some(Direction::Up)
        } else if dz <= -2 {
            Some(Direction::Down)
        } else if dy >= 2 {
            Some(Direction::North)
        } else if dy <= -2 {
            Some(Direction::South)
        } else if dx >= 2 {
            Some(Direction::East)
        } else if dx <= -2 {
            Some(Direction::West)
        } else {
            None
        }
    }
}

/// An `L2` (V-list) entry: a well-separated same-level source box plus the
/// direction of its plane-wave translation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ListEntry {
    /// Source-tree node id.
    pub source: u32,
    /// Plane-wave direction of the source relative to the target.
    pub direction: Direction,
    /// Same-level integer offset (source minus target) in box widths.
    pub offset: (i8, i8, i8),
}

/// The four interaction lists of every target box.
#[derive(Clone, Debug, Default)]
pub struct BoxLists {
    /// `L1` / U: leaf sources adjacent to this leaf target (`S→T`).
    pub l1: Vec<u32>,
    /// `L2` / V: same-level well-separated sources (`M→L` or `M→I/I→I/I→L`).
    pub l2: Vec<ListEntry>,
    /// `L3` / W: deeper well-separated sources under adjacent boxes (`M→T`).
    pub l3: Vec<u32>,
    /// `L4` / X: shallower well-separated leaf sources (`S→L`).
    pub l4: Vec<u32>,
}

/// Interaction lists for every target-tree node.
pub struct InteractionLists {
    lists: Vec<BoxLists>,
}

impl InteractionLists {
    /// Lists of one target node.
    #[inline]
    pub fn of(&self, target: u32) -> &BoxLists {
        &self.lists[target as usize]
    }

    /// Number of target nodes covered.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// Whether there are no target nodes.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// Total number of entries over all lists (edges of the interaction
    /// phase of the DAG, before merge-and-shift).
    pub fn total_entries(&self) -> usize {
        self.lists
            .iter()
            .map(|b| b.l1.len() + b.l2.len() + b.l3.len() + b.l4.len())
            .sum()
    }
}

/// Topology access shared by every tree shape that wants interaction
/// lists: the static [`Octree`] and the incremental refit tree both
/// expose Morton keys, parent/child links and leaf-ness by node id.
///
/// Node ids must be dense `u32` handles with the root at
/// [`TreeTopology::root`]; `children_of` returns the raw child-slot array
/// (`-1` = empty octant) so callers can walk occupied octants in Morton
/// order.
pub trait TreeTopology {
    /// Root node id (conventionally 0).
    fn root(&self) -> u32 {
        0
    }
    /// Morton key of a node.
    fn key_of(&self, id: u32) -> MortonKey;
    /// Whether the node is a leaf.
    fn is_leaf(&self, id: u32) -> bool;
    /// Child-slot array, `-1` for empty octants.
    fn children_of(&self, id: u32) -> [i32; 8];
    /// Parent id, `-1` at the root.
    fn parent_of(&self, id: u32) -> i32;
}

impl TreeTopology for Octree {
    fn key_of(&self, id: u32) -> MortonKey {
        self.node(id).key
    }
    fn is_leaf(&self, id: u32) -> bool {
        self.node(id).is_leaf()
    }
    fn children_of(&self, id: u32) -> [i32; 8] {
        self.node(id).children
    }
    fn parent_of(&self, id: u32) -> i32 {
        self.node(id).parent
    }
}

/// Compute the four interaction lists of **one** target box without
/// running the full lockstep traversal.
///
/// This restricts the dual-tree recursion to the single root→`t` target
/// path: a source box descends alongside the target ancestors exactly as
/// in [`DualTree::interaction_lists`], and only pairs whose target side
/// *is* `t` classify into `t`'s lists — pairs that separate at a proper
/// ancestor belong to that ancestor, pairs that stay adjacent past `t`
/// belong to `t`'s descendants.  The result is identical to the
/// corresponding [`BoxLists`] of the full traversal (property-tested
/// below), at `O(|adjacent subtrees|)` cost, which is what makes
/// incremental list *patching* after a tree refit affordable: only boxes
/// near a structural change recompute their lists.
pub fn box_lists_for<S: TreeTopology, T: TreeTopology>(source: &S, target: &T, t: u32) -> BoxLists {
    // Ancestor path of the target, root first.
    let mut path = vec![t];
    let mut p = target.parent_of(t);
    while p >= 0 {
        path.push(p as u32);
        p = target.parent_of(p as u32);
    }
    path.reverse();
    let tk = target.key_of(t);
    let target_is_leaf = target.is_leaf(t);
    let last = path.len() - 1;

    let mut out = BoxLists::default();
    // (source id, index into the ancestor path).
    let mut stack: Vec<(u32, usize)> = vec![(source.root(), 0)];
    while let Some((s, d)) = stack.pop() {
        let sk = source.key_of(s);
        let ak = target.key_of(path[d]);
        if sk.well_separated(&ak) {
            if d == last {
                // Separated exactly at `t`: same classification as the
                // lockstep traversal.
                use std::cmp::Ordering;
                match sk.level.cmp(&tk.level) {
                    Ordering::Equal => {
                        let (dx, dy, dz) = tk.offset(&sk);
                        let direction = Direction::from_offset(dx, dy, dz)
                            .expect("well-separated same-level pair must have an axis ≥ 2");
                        out.l2.push(ListEntry {
                            source: s,
                            direction,
                            offset: (dx as i8, dy as i8, dz as i8),
                        });
                    }
                    Ordering::Greater => out.l3.push(s),
                    Ordering::Less => out.l4.push(s),
                }
            }
            // Separated at a proper ancestor: the pair is an ancestor's
            // list entry, not t's.
            continue;
        }
        if d == last {
            if target_is_leaf {
                if source.is_leaf(s) {
                    out.l1.push(s);
                } else {
                    for c in source.children_of(s) {
                        if c >= 0 {
                            stack.push((c as u32, d));
                        }
                    }
                }
            }
            // Interior target still adjacent: the lockstep would descend
            // into t's children, so nothing more lands in t's own lists.
        } else if source.is_leaf(s) {
            // Leaf source beside an interior ancestor: only the target
            // side descends, and only the child on t's path matters.
            stack.push((s, d + 1));
        } else {
            // Both interior: both sides descend; pair every source child
            // with the target child on t's path.
            for c in source.children_of(s) {
                if c >= 0 {
                    stack.push((c as u32, d + 1));
                }
            }
        }
    }
    out
}

/// The dual tree: one octree per ensemble over a shared domain.
///
/// ```
/// use dashmm_tree::{uniform_cube, BuildParams, DualTree};
///
/// let sources = uniform_cube(2000, 1);
/// let targets = uniform_cube(2000, 2);
/// let dt = DualTree::build(&sources, &targets, BuildParams::default());
/// let lists = dt.interaction_lists();
/// // Every leaf target box has near-field work, and interior boxes have
/// // well-separated (L2) interactions.
/// assert!(lists.total_entries() > 0);
/// ```
pub struct DualTree {
    source: Octree,
    target: Octree,
}

impl DualTree {
    /// Build both trees over the smallest common cube.
    pub fn build(sources: &[Point3], targets: &[Point3], params: BuildParams) -> Self {
        let domain = Domain::containing(&[sources, targets], 1e-4);
        DualTree {
            source: Octree::build(domain, sources, params),
            target: Octree::build(domain, targets, params),
        }
    }

    /// Build with an explicit, pre-computed domain.
    pub fn build_in(
        domain: Domain,
        sources: &[Point3],
        targets: &[Point3],
        params: BuildParams,
    ) -> Self {
        DualTree {
            source: Octree::build(domain, sources, params),
            target: Octree::build(domain, targets, params),
        }
    }

    /// The source tree.
    pub fn source(&self) -> &Octree {
        &self.source
    }

    /// The target tree.
    pub fn target(&self) -> &Octree {
        &self.target
    }

    /// Shared domain.
    pub fn domain(&self) -> &Domain {
        self.source.domain()
    }

    /// Run the lockstep dual-tree traversal and produce the four lists for
    /// every target box.
    pub fn interaction_lists(&self) -> InteractionLists {
        let mut lists = vec![BoxLists::default(); self.target.num_nodes()];
        let mut stack: Vec<(u32, u32)> = vec![(0, 0)];
        while let Some((s, t)) = stack.pop() {
            let sn = self.source.node(s);
            let tn = self.target.node(t);
            if sn.key.well_separated(&tn.key) {
                let bl = &mut lists[t as usize];
                use std::cmp::Ordering;
                match sn.key.level.cmp(&tn.key.level) {
                    Ordering::Equal => {
                        let (dx, dy, dz) = tn.key.offset(&sn.key);
                        let direction = Direction::from_offset(dx, dy, dz)
                            .expect("well-separated same-level pair must have an axis ≥ 2");
                        bl.l2.push(ListEntry {
                            source: s,
                            direction,
                            offset: (dx as i8, dy as i8, dz as i8),
                        });
                    }
                    Ordering::Greater => bl.l3.push(s),
                    Ordering::Less => bl.l4.push(s),
                }
                continue;
            }
            match (sn.is_leaf(), tn.is_leaf()) {
                (true, true) => lists[t as usize].l1.push(s),
                (true, false) => {
                    for ct in tn.child_ids() {
                        stack.push((s, ct));
                    }
                }
                (false, true) => {
                    for cs in sn.child_ids() {
                        stack.push((cs, t));
                    }
                }
                (false, false) => {
                    for cs in sn.child_ids() {
                        for ct in tn.child_ids() {
                            stack.push((cs, ct));
                        }
                    }
                }
            }
        }
        InteractionLists { lists }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{sphere_surface, uniform_cube};

    fn dual(n: usize, threshold: usize) -> DualTree {
        let src = uniform_cube(n, 11);
        let tgt = uniform_cube(n, 22);
        DualTree::build(
            &src,
            &tgt,
            BuildParams {
                threshold,
                max_level: 20,
            },
        )
    }

    /// Brute-force check: every (source point, target point) pair must be
    /// covered by exactly one list entry on the path of the two boxes.
    #[test]
    fn lists_cover_every_pair_exactly_once() {
        let src = uniform_cube(300, 11);
        let tgt = uniform_cube(300, 22);
        let dt = DualTree::build(
            &src,
            &tgt,
            BuildParams {
                threshold: 10,
                max_level: 20,
            },
        );
        let lists = dt.interaction_lists();

        // count[i][j] = how many list entries cover source point i and
        // target point j (via box containment).  Must end at exactly 1.
        let ns = dt.source().points().len();
        let nt = dt.target().points().len();
        let mut count = vec![vec![0u32; nt]; ns];

        // Descendant point ranges per box are contiguous: first..first+count.
        let mark = |count: &mut Vec<Vec<u32>>, sbox: u32, tbox: u32, dt: &DualTree| {
            let sn = dt.source().node(sbox);
            let tn = dt.target().node(tbox);
            for i in sn.first..sn.first + sn.count {
                for j in tn.first..tn.first + tn.count {
                    count[i][j] += 1;
                }
            }
        };

        for t in 0..dt.target().num_nodes() as u32 {
            let bl = lists.of(t);
            for &s in &bl.l1 {
                mark(&mut count, s, t, &dt);
            }
            for e in &bl.l2 {
                mark(&mut count, e.source, t, &dt);
            }
            for &s in &bl.l3 {
                mark(&mut count, s, t, &dt);
            }
            for &s in &bl.l4 {
                mark(&mut count, s, t, &dt);
            }
        }
        for i in 0..ns {
            for j in 0..nt {
                assert_eq!(
                    count[i][j], 1,
                    "pair (src {i}, tgt {j}) covered {} times",
                    count[i][j]
                );
            }
        }
    }

    #[test]
    fn l2_entries_are_same_level_well_separated_with_near_parents() {
        let dt = dual(4000, 60);
        let lists = dt.interaction_lists();
        for t in 0..dt.target().num_nodes() as u32 {
            let tk = dt.target().node(t).key;
            for e in &lists.of(t).l2 {
                let sk = dt.source().node(e.source).key;
                assert_eq!(sk.level, tk.level);
                assert!(sk.well_separated(&tk));
                // Parents must NOT be well separated (else the pair would
                // have been classified one level up).
                assert!(sk.parent().adjacent(&tk.parent()));
                // Offsets bounded by the children-of-colleagues range.
                let (dx, dy, dz) = tk.offset(&sk);
                assert!(dx.abs() <= 3 && dy.abs() <= 3 && dz.abs() <= 3);
                assert!(dx.abs() >= 2 || dy.abs() >= 2 || dz.abs() >= 2);
                assert_eq!(e.offset, (dx as i8, dy as i8, dz as i8));
            }
        }
    }

    #[test]
    fn l2_size_bounded_by_189() {
        // The classic bound: |V| ≤ 6³ − 3³ = 189 (paper §II).
        let dt = dual(30000, 60);
        let lists = dt.interaction_lists();
        let max = (0..dt.target().num_nodes() as u32)
            .map(|t| lists.of(t).l2.len())
            .max()
            .unwrap();
        assert!(max <= 189, "max |L2| = {max}");
        assert!(
            max > 100,
            "interior boxes should approach the 189 bound, got {max}"
        );
    }

    #[test]
    fn l1_and_l3_only_on_leaves() {
        let dt = dual(5000, 60);
        let lists = dt.interaction_lists();
        for t in 0..dt.target().num_nodes() as u32 {
            let bl = lists.of(t);
            if !dt.target().node(t).is_leaf() {
                assert!(bl.l1.is_empty(), "L1 on non-leaf target {t}");
                assert!(bl.l3.is_empty(), "L3 on non-leaf target {t}");
            }
            for &s in &bl.l1 {
                assert!(dt.source().node(s).is_leaf(), "L1 source must be leaf");
                assert!(dt.source().node(s).key.adjacent(&dt.target().node(t).key));
            }
            for &s in &bl.l4 {
                assert!(dt.source().node(s).is_leaf(), "L4 source must be leaf");
            }
        }
    }

    #[test]
    fn l3_l4_level_relations() {
        let src = sphere_surface(8000, 5);
        let tgt = uniform_cube(8000, 6);
        let dt = DualTree::build(
            &src,
            &tgt,
            BuildParams {
                threshold: 30,
                max_level: 20,
            },
        );
        let lists = dt.interaction_lists();
        let mut saw_l3 = false;
        let mut saw_l4 = false;
        for t in 0..dt.target().num_nodes() as u32 {
            let tk = dt.target().node(t).key;
            for &s in &lists.of(t).l3 {
                saw_l3 = true;
                let sk = dt.source().node(s).key;
                assert!(sk.level > tk.level);
                assert!(sk.well_separated(&tk));
                assert!(sk.parent().adjacent(&tk), "L3 parent must touch the target");
            }
            for &s in &lists.of(t).l4 {
                saw_l4 = true;
                let sk = dt.source().node(s).key;
                assert!(sk.level < tk.level);
                assert!(sk.well_separated(&tk));
                assert!(
                    sk.adjacent(&tk.parent()),
                    "L4 source must touch the target's parent"
                );
            }
        }
        assert!(
            saw_l3 && saw_l4,
            "non-uniform dual trees must produce L3/L4 entries"
        );
    }

    #[test]
    fn direction_assignment_covers_l2() {
        let dt = dual(20000, 60);
        let lists = dt.interaction_lists();
        let mut by_dir = [0usize; 6];
        for t in 0..dt.target().num_nodes() as u32 {
            for e in &lists.of(t).l2 {
                by_dir[e.direction.index()] += 1;
            }
        }
        // All six directions must occur for uniform cube data.
        for (d, &c) in by_dir.iter().enumerate() {
            assert!(c > 0, "direction {d} never assigned");
        }
    }

    #[test]
    fn direction_from_offset_rules() {
        assert_eq!(Direction::from_offset(0, 0, 2), Some(Direction::Up));
        assert_eq!(Direction::from_offset(3, -3, -2), Some(Direction::Down));
        assert_eq!(Direction::from_offset(2, 3, 1), Some(Direction::North));
        assert_eq!(Direction::from_offset(2, -2, 0), Some(Direction::South));
        assert_eq!(Direction::from_offset(2, 1, 1), Some(Direction::East));
        assert_eq!(Direction::from_offset(-2, 1, -1), Some(Direction::West));
        assert_eq!(Direction::from_offset(1, 1, 1), None);
    }

    #[test]
    fn direction_axis_sign_consistency() {
        for d in Direction::ALL {
            let mut off = [0i64; 3];
            off[d.axis()] = 2 * d.sign() as i64;
            assert_eq!(Direction::from_offset(off[0], off[1], off[2]), Some(d));
        }
    }

    #[test]
    fn identical_ensembles_have_empty_l3_l4_when_uniform() {
        // Identical uniform trees refine identically, so W/X lists are rare;
        // with an exactly shared tree they appear only via depth jitter.
        let pts = uniform_cube(2000, 3);
        let dt = DualTree::build(
            &pts,
            &pts,
            BuildParams {
                threshold: 60,
                max_level: 20,
            },
        );
        let lists = dt.interaction_lists();
        // The L1 list of every leaf must contain the co-located source box.
        for t in 0..dt.target().num_nodes() as u32 {
            let tn = dt.target().node(t);
            if tn.is_leaf() {
                let found = lists.of(t).l1.iter().any(|&s| {
                    let sk = dt.source().node(s).key;
                    sk == tn.key || sk.contains(&tn.key) || tn.key.contains(&sk)
                });
                assert!(found, "co-located source box missing from L1 of leaf {t}");
            }
        }
    }

    #[test]
    fn well_separated_never_in_l1() {
        let dt = dual(3000, 40);
        let lists = dt.interaction_lists();
        for t in 0..dt.target().num_nodes() as u32 {
            let tk = dt.target().node(t).key;
            for &s in &lists.of(t).l1 {
                assert!(!dt.source().node(s).key.well_separated(&tk));
            }
        }
    }

    #[test]
    fn root_pair_trivial_tree() {
        // Tiny ensembles: single-box trees, everything in L1.
        let src = vec![Point3::new(0.1, 0.0, 0.0)];
        let tgt = vec![Point3::new(-0.1, 0.0, 0.0)];
        let dt = DualTree::build(&src, &tgt, BuildParams::default());
        let lists = dt.interaction_lists();
        assert_eq!(lists.of(0).l1, vec![0]);
        assert!(lists.of(0).l2.is_empty());
    }

    #[test]
    fn disjoint_ensembles_use_coarse_separation() {
        // Sources and targets in far-apart clusters: the traversal should
        // classify the interaction at a coarse level (small total edge count).
        let mut src = uniform_cube(2000, 1);
        for p in &mut src {
            p.x = p.x * 0.1 - 0.9; // cluster near x = -0.9
        }
        let mut tgt = uniform_cube(2000, 2);
        for p in &mut tgt {
            p.x = p.x * 0.1 + 0.9; // cluster near x = +0.9
        }
        let dt = DualTree::build(
            &src,
            &tgt,
            BuildParams {
                threshold: 60,
                max_level: 20,
            },
        );
        let lists = dt.interaction_lists();
        let entries = lists.total_entries();
        // Full pairwise coverage with two distant clusters should collapse
        // to far fewer edges than boxes-squared.
        let nboxes = dt.source().num_nodes() * dt.target().num_nodes();
        assert!(
            entries * 10 < nboxes || entries < 200,
            "expected coarse classification: {entries} edges vs {nboxes} box pairs"
        );
    }

    #[test]
    fn single_target_lists_match_lockstep_traversal() {
        // `box_lists_for` must reproduce the full dual-tree traversal's
        // lists for every target box, on trees deep enough to exercise
        // all four lists.
        let src = sphere_surface(4000, 5);
        let tgt = uniform_cube(4000, 6);
        let dt = DualTree::build(
            &src,
            &tgt,
            BuildParams {
                threshold: 30,
                max_level: 20,
            },
        );
        let lists = dt.interaction_lists();
        let sort = |mut v: Vec<u32>| {
            v.sort_unstable();
            v
        };
        for t in 0..dt.target().num_nodes() as u32 {
            let want = lists.of(t);
            let got = box_lists_for(dt.source(), dt.target(), t);
            assert_eq!(sort(got.l1.clone()), sort(want.l1.clone()), "L1 of {t}");
            assert_eq!(sort(got.l3.clone()), sort(want.l3.clone()), "L3 of {t}");
            assert_eq!(sort(got.l4.clone()), sort(want.l4.clone()), "L4 of {t}");
            let key = |e: &ListEntry| e.source;
            let mut g2 = got.l2.clone();
            let mut w2 = want.l2.clone();
            g2.sort_unstable_by_key(key);
            w2.sort_unstable_by_key(key);
            assert_eq!(g2, w2, "L2 of {t}");
        }
    }

    #[test]
    fn morton_key_sanity_for_lists() {
        let a = MortonKey::new(2, 0, 0, 0);
        let b = MortonKey::new(2, 3, 0, 0);
        assert!(a.well_separated(&b));
    }
}
