//! Tree shape statistics — the quantities behind the paper's observation
//! (§V-A) that cube data produces fairly uniform trees with a short
//! critical path, while sphere-surface data produces non-uniform trees
//! with a longer one.

use crate::build::Octree;

/// Shape summary of one octree.
#[derive(Clone, Debug, PartialEq)]
pub struct TreeStats {
    /// Total boxes.
    pub boxes: usize,
    /// Leaf boxes.
    pub leaves: usize,
    /// Deepest level.
    pub depth: u8,
    /// Shallowest leaf level.
    pub min_leaf_level: u8,
    /// Deepest leaf level.
    pub max_leaf_level: u8,
    /// Number of boxes per level (index = level).
    pub boxes_per_level: Vec<usize>,
    /// Mean points per leaf.
    pub mean_leaf_points: f64,
    /// Maximum points in any leaf.
    pub max_leaf_points: usize,
}

impl TreeStats {
    /// Compute the statistics of a tree.
    pub fn compute(tree: &Octree) -> Self {
        let leaves = tree.leaves();
        let mut min_leaf = u8::MAX;
        let mut max_leaf = 0u8;
        let mut total_pts = 0usize;
        let mut max_pts = 0usize;
        for &l in &leaves {
            let n = tree.node(l);
            min_leaf = min_leaf.min(n.key.level);
            max_leaf = max_leaf.max(n.key.level);
            total_pts += n.count;
            max_pts = max_pts.max(n.count);
        }
        let boxes_per_level = (0..=tree.depth())
            .map(|l| tree.level_nodes(l).len())
            .collect();
        TreeStats {
            boxes: tree.num_nodes(),
            leaves: leaves.len(),
            depth: tree.depth(),
            min_leaf_level: min_leaf,
            max_leaf_level: max_leaf,
            boxes_per_level,
            mean_leaf_points: total_pts as f64 / leaves.len().max(1) as f64,
            max_leaf_points: max_pts,
        }
    }

    /// Leaf-depth spread — 0 for perfectly uniform trees; grows with
    /// adaptivity (the paper's cube-vs-sphere contrast).
    pub fn leaf_depth_spread(&self) -> u8 {
        self.max_leaf_level - self.min_leaf_level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::BuildParams;
    use crate::dist::{sphere_surface, uniform_cube};
    use crate::domain::Domain;

    fn stats_for(points: &[crate::Point3], threshold: usize) -> TreeStats {
        let domain = Domain::containing(&[points], 1e-4);
        let tree = Octree::build(
            domain,
            points,
            BuildParams {
                threshold,
                max_level: 20,
            },
        );
        TreeStats::compute(&tree)
    }

    #[test]
    fn counts_are_consistent() {
        let s = stats_for(&uniform_cube(20000, 1), 60);
        assert_eq!(s.boxes_per_level.iter().sum::<usize>(), s.boxes);
        assert!(s.leaves <= s.boxes);
        assert!(s.max_leaf_points <= 60);
        assert!(s.mean_leaf_points > 0.0 && s.mean_leaf_points <= 60.0);
        // All points accounted for.
        let approx_total = s.mean_leaf_points * s.leaves as f64;
        assert!((approx_total - 20000.0).abs() < 1e-6);
    }

    #[test]
    fn sphere_trees_are_less_uniform_than_cube_trees() {
        let n = 30000;
        let cube = stats_for(&uniform_cube(n, 2), 60);
        let sphere = stats_for(&sphere_surface(n, 2), 60);
        assert!(
            cube.leaf_depth_spread() <= 1,
            "cube spread {}",
            cube.leaf_depth_spread()
        );
        assert!(
            sphere.leaf_depth_spread() >= cube.leaf_depth_spread(),
            "sphere {} vs cube {}",
            sphere.leaf_depth_spread(),
            cube.leaf_depth_spread()
        );
        assert!(sphere.depth > cube.depth, "sphere trees refine deeper");
    }

    #[test]
    fn level_histogram_monotone_then_pruned() {
        // In a uniform cube tree, box counts grow roughly 8x per level
        // until the leaf level.
        let s = stats_for(&uniform_cube(40000, 3), 60);
        for w in s
            .boxes_per_level
            .windows(2)
            .take(s.boxes_per_level.len() - 1)
        {
            assert!(
                w[1] >= w[0],
                "level counts should not shrink before the leaves"
            );
        }
    }
}
