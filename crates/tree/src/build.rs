//! Adaptive octree construction.
//!
//! Points are sorted once by their deep-grid Morton code; the tree is then
//! built recursively over contiguous index ranges.  A box is refined while it
//! holds at least `threshold` points (the paper uses a refinement threshold
//! of 60) and its level is below `max_level`; empty children are pruned.

use crate::domain::Domain;
use crate::morton::{deep_code, MortonKey, MAX_LEVEL};
use crate::point::Point3;

/// Tree construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct BuildParams {
    /// Refine a box while it contains more than this many points.
    pub threshold: usize,
    /// Hard refinement cap (guards against coincident points).
    pub max_level: u8,
}

impl Default for BuildParams {
    fn default() -> Self {
        // The paper's refinement threshold.
        BuildParams {
            threshold: 60,
            max_level: MAX_LEVEL,
        }
    }
}

/// One box of the octree.
#[derive(Clone, Debug)]
pub struct OctreeNode {
    /// Level + integer grid coordinates of the box.
    pub key: MortonKey,
    /// Index of the parent node (`-1` for the root).
    pub parent: i32,
    /// Child node indices per octant; `-1` where the child was pruned.
    pub children: [i32; 8],
    /// First index into the permuted point array.
    pub first: usize,
    /// Number of points contained in this box.
    pub count: usize,
}

impl OctreeNode {
    /// Whether the node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.iter().all(|&c| c < 0)
    }

    /// Iterator over existing child indices.
    pub fn child_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.children.iter().filter(|&&c| c >= 0).map(|&c| c as u32)
    }
}

/// An adaptive, empty-pruned octree over one point ensemble.
pub struct Octree {
    domain: Domain,
    params: BuildParams,
    nodes: Vec<OctreeNode>,
    /// Points permuted into Morton order.
    points: Vec<Point3>,
    /// `perm[i]` = original index of `points[i]`.
    perm: Vec<u32>,
    /// Node indices grouped by level.
    levels: Vec<Vec<u32>>,
}

impl Octree {
    /// Build the tree for `points` over `domain`.
    pub fn build(domain: Domain, points: &[Point3], params: BuildParams) -> Self {
        assert!(!points.is_empty(), "octree requires at least one point");
        assert!(params.max_level <= MAX_LEVEL);

        // Deep-grid Morton codes, then a single sort.
        let mut order: Vec<u32> = (0..points.len() as u32).collect();
        let codes: Vec<u64> = points
            .iter()
            .map(|p| {
                let (x, y, z) = domain.grid_coords(p, MAX_LEVEL);
                deep_code(x, y, z)
            })
            .collect();
        order.sort_unstable_by_key(|&i| codes[i as usize]);
        let sorted_codes: Vec<u64> = order.iter().map(|&i| codes[i as usize]).collect();
        let sorted_points: Vec<Point3> = order.iter().map(|&i| points[i as usize]).collect();

        let mut tree = Octree {
            domain,
            params,
            nodes: Vec::new(),
            points: sorted_points,
            perm: order,
            levels: Vec::new(),
        };
        tree.nodes.push(OctreeNode {
            key: MortonKey::ROOT,
            parent: -1,
            children: [-1; 8],
            first: 0,
            count: tree.points.len(),
        });
        tree.refine(0, &sorted_codes);

        tree.levels = {
            let max = tree.nodes.iter().map(|n| n.key.level).max().unwrap() as usize;
            let mut lv = vec![Vec::new(); max + 1];
            for (i, n) in tree.nodes.iter().enumerate() {
                lv[n.key.level as usize].push(i as u32);
            }
            lv
        };
        tree
    }

    fn refine(&mut self, node: usize, codes: &[u64]) {
        let (key, first, count) = {
            let n = &self.nodes[node];
            (n.key, n.first, n.count)
        };
        if count <= self.params.threshold || key.level >= self.params.max_level {
            return;
        }
        // Children partition the sorted range; the octant of a point at the
        // child level is the 3-bit group at this depth of its deep code.
        let shift = 3 * (MAX_LEVEL - key.level - 1) as u64;
        let mut lo = first;
        let hi = first + count;
        while lo < hi {
            let oct = ((codes[lo] >> shift) & 7) as u8;
            // Find the end of this octant's run with a galloping scan.
            let mut end = lo + 1;
            while end < hi && ((codes[end] >> shift) & 7) as u8 == oct {
                end += 1;
            }
            let child_idx = self.nodes.len();
            // Morton bit interleave is x | y<<1 | z<<2; child() takes the same.
            self.nodes.push(OctreeNode {
                key: key.child(oct),
                parent: node as i32,
                children: [-1; 8],
                first: lo,
                count: end - lo,
            });
            self.nodes[node].children[oct as usize] = child_idx as i32;
            self.refine(child_idx, codes);
            lo = end;
        }
    }

    /// The shared computational domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Build parameters used.
    pub fn params(&self) -> &BuildParams {
        &self.params
    }

    /// Number of boxes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Access a node.
    #[inline]
    pub fn node(&self, id: u32) -> &OctreeNode {
        &self.nodes[id as usize]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[OctreeNode] {
        &self.nodes
    }

    /// Morton-ordered points.
    pub fn points(&self) -> &[Point3] {
        &self.points
    }

    /// Points of one box (contiguous slice in Morton order).
    pub fn points_of(&self, id: u32) -> &[Point3] {
        let n = self.node(id);
        &self.points[n.first..n.first + n.count]
    }

    /// Original indices of the Morton-ordered points.
    pub fn permutation(&self) -> &[u32] {
        &self.perm
    }

    /// Geometric center of a box.
    pub fn center_of(&self, id: u32) -> Point3 {
        let k = self.node(id).key;
        self.domain.box_center(k.level, k.x, k.y, k.z)
    }

    /// Half-side of a box.
    pub fn half_of(&self, id: u32) -> f64 {
        self.domain.side_at(self.node(id).key.level) * 0.5
    }

    /// Node indices at a given level.
    pub fn level_nodes(&self, level: u8) -> &[u32] {
        self.levels
            .get(level as usize)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Deepest level present in the tree.
    pub fn depth(&self) -> u8 {
        (self.levels.len() - 1) as u8
    }

    /// Indices of all leaf nodes.
    pub fn leaves(&self) -> Vec<u32> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_leaf())
            .map(|(i, _)| i as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{sphere_surface, uniform_cube};

    fn build(points: &[Point3], threshold: usize) -> Octree {
        let domain = Domain::containing(&[points], 1e-4);
        Octree::build(
            domain,
            points,
            BuildParams {
                threshold,
                max_level: MAX_LEVEL,
            },
        )
    }

    #[test]
    fn all_points_in_their_boxes() {
        let pts = uniform_cube(5000, 42);
        let t = build(&pts, 60);
        for (id, n) in t.nodes().iter().enumerate() {
            let c = t.center_of(id as u32);
            let h = t.half_of(id as u32);
            for p in t.points_of(id as u32) {
                assert!(
                    (*p - c).norm_max() <= h * (1.0 + 1e-9),
                    "point outside its box at node {id}"
                );
            }
            assert!(n.count > 0, "empty node {id} must have been pruned");
        }
    }

    #[test]
    fn leaves_partition_points() {
        let pts = sphere_surface(3000, 9);
        let t = build(&pts, 60);
        let mut covered = vec![false; pts.len()];
        for leaf in t.leaves() {
            let n = t.node(leaf);
            for i in n.first..n.first + n.count {
                assert!(!covered[i], "point {i} covered twice");
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn leaf_counts_respect_threshold() {
        let pts = uniform_cube(10000, 1);
        let t = build(&pts, 60);
        for leaf in t.leaves() {
            assert!(t.node(leaf).count <= 60);
        }
        // Interior nodes must exceed the threshold (that is why they split).
        for n in t.nodes() {
            if !n.is_leaf() {
                assert!(n.count > 60);
            }
        }
    }

    #[test]
    fn children_partition_parent_range() {
        let pts = uniform_cube(8000, 3);
        let t = build(&pts, 30);
        for n in t.nodes() {
            if n.is_leaf() {
                continue;
            }
            let mut total = 0;
            let mut next = n.first;
            let mut kids: Vec<&OctreeNode> = n.child_ids().map(|c| t.node(c)).collect();
            kids.sort_by_key(|k| k.first);
            for k in kids {
                assert_eq!(k.first, next, "children must tile the parent range");
                assert_eq!(
                    k.parent,
                    t.nodes().iter().position(|m| std::ptr::eq(m, n)).unwrap() as i32
                );
                next = k.first + k.count;
                total += k.count;
            }
            assert_eq!(total, n.count);
        }
    }

    #[test]
    fn permutation_is_a_bijection() {
        let pts = uniform_cube(1234, 5);
        let t = build(&pts, 20);
        let mut seen = vec![false; pts.len()];
        for &p in t.permutation() {
            assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Permuted points match originals.
        for (i, &orig) in t.permutation().iter().enumerate() {
            assert_eq!(t.points()[i], pts[orig as usize]);
        }
    }

    #[test]
    fn sphere_tree_deeper_than_cube_tree() {
        // The paper: sphere data produces much more non-uniform (deeper)
        // trees.  At 20k points a uniform cube sits right at the depth-4/5
        // boundary and the comparison depends on the RNG stream; 40k gives
        // the property a full level of margin.
        let n = 40000;
        let cube = build(&uniform_cube(n, 7), 60);
        let sphere = build(&sphere_surface(n, 7), 60);
        assert!(
            sphere.depth() > cube.depth(),
            "sphere depth {} should exceed cube depth {}",
            sphere.depth(),
            cube.depth()
        );
    }

    #[test]
    fn cube_tree_is_uniform_depth() {
        // With uniform cube data every leaf sits at the same depth (paper §V-A).
        let t = build(&uniform_cube(40000, 2), 60);
        let depths: Vec<u8> = t.leaves().iter().map(|&l| t.node(l).key.level).collect();
        let min = *depths.iter().min().unwrap();
        let max = *depths.iter().max().unwrap();
        assert!(
            max - min <= 1,
            "cube leaves should be nearly uniform: {min}..{max}"
        );
    }

    #[test]
    fn single_point_tree() {
        let pts = vec![Point3::new(0.3, -0.2, 0.9)];
        let domain = Domain::new(Point3::ZERO, 1.0);
        let t = Octree::build(domain, &pts, BuildParams::default());
        assert_eq!(t.num_nodes(), 1);
        assert!(t.node(0).is_leaf());
    }

    #[test]
    fn coincident_points_capped_by_max_level() {
        let pts = vec![Point3::new(0.1, 0.1, 0.1); 100];
        let domain = Domain::new(Point3::ZERO, 1.0);
        let t = Octree::build(
            domain,
            &pts,
            BuildParams {
                threshold: 10,
                max_level: 4,
            },
        );
        assert!(t.depth() <= 4);
        for leaf in t.leaves() {
            assert_eq!(t.node(leaf).count, 100);
        }
    }

    #[test]
    fn level_nodes_cover_all_nodes() {
        let pts = uniform_cube(3000, 11);
        let t = build(&pts, 60);
        let total: usize = (0..=t.depth()).map(|l| t.level_nodes(l).len()).sum();
        assert_eq!(total, t.num_nodes());
    }
}
