//! Morton (Z-order) keys for octree boxes.
//!
//! A [`MortonKey`] identifies a box by its refinement level and its integer
//! grid coordinates at that level.  Keys are the bridge between the two
//! trees of the dual-tree decomposition: because the source and target tree
//! share one domain cube, adjacency and well-separatedness between boxes of
//! *different* trees (and different levels) reduce to exact integer interval
//! tests on the deepest grid.

/// Maximum supported refinement level (21 bits per dimension in a u64 code).
pub const MAX_LEVEL: u8 = 20;

/// A box identifier: refinement level plus grid coordinates at that level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MortonKey {
    /// Refinement level; 0 is the root box.
    pub level: u8,
    /// Grid coordinates at `level`, each in `0..2^level`.
    pub x: u32,
    pub y: u32,
    pub z: u32,
}

impl MortonKey {
    /// The root box.
    pub const ROOT: MortonKey = MortonKey {
        level: 0,
        x: 0,
        y: 0,
        z: 0,
    };

    /// Construct, asserting coordinates fit the level grid.
    pub fn new(level: u8, x: u32, y: u32, z: u32) -> Self {
        debug_assert!(level <= MAX_LEVEL);
        let n = 1u64 << level;
        debug_assert!((x as u64) < n && (y as u64) < n && (z as u64) < n);
        MortonKey { level, x, y, z }
    }

    /// Child key in octant `oct` (bit 0 = x, bit 1 = y, bit 2 = z).
    pub fn child(&self, oct: u8) -> MortonKey {
        debug_assert!(oct < 8);
        MortonKey::new(
            self.level + 1,
            self.x * 2 + (oct & 1) as u32,
            self.y * 2 + ((oct >> 1) & 1) as u32,
            self.z * 2 + ((oct >> 2) & 1) as u32,
        )
    }

    /// Parent key; the root is its own parent.
    pub fn parent(&self) -> MortonKey {
        if self.level == 0 {
            *self
        } else {
            MortonKey::new(self.level - 1, self.x / 2, self.y / 2, self.z / 2)
        }
    }

    /// Which octant of its parent this key occupies.
    pub fn octant(&self) -> u8 {
        ((self.x & 1) + 2 * (self.y & 1) + 4 * (self.z & 1)) as u8
    }

    /// Interleaved Morton code at this key's level (for same-level ordering).
    pub fn code(&self) -> u64 {
        spread(self.x) | (spread(self.y) << 1) | (spread(self.z) << 2)
    }

    /// Integer coordinate interval `[lo, hi)` covered by this box on the
    /// deepest (`MAX_LEVEL`) grid, per axis.
    fn span(&self, axis: usize) -> (u64, u64) {
        let shift = (MAX_LEVEL - self.level) as u64;
        let c = match axis {
            0 => self.x,
            1 => self.y,
            _ => self.z,
        } as u64;
        (c << shift, (c + 1) << shift)
    }

    /// Whether the closures of the two boxes touch or overlap ("adjacent").
    ///
    /// Two boxes are adjacent iff along every axis their deep-grid intervals
    /// have non-positive gap.  Well-separatedness (the condition for a valid
    /// multipole/local interaction) is the negation.
    pub fn adjacent(&self, other: &MortonKey) -> bool {
        for a in 0..3 {
            let (lo1, hi1) = self.span(a);
            let (lo2, hi2) = other.span(a);
            if lo2 > hi1 || lo1 > hi2 {
                return false;
            }
        }
        true
    }

    /// Whether the boxes are well-separated: their closures do not touch.
    #[inline]
    pub fn well_separated(&self, other: &MortonKey) -> bool {
        !self.adjacent(other)
    }

    /// Whether `self`'s region contains `other`'s region (same tree nesting).
    pub fn contains(&self, other: &MortonKey) -> bool {
        if other.level < self.level {
            return false;
        }
        for a in 0..3 {
            let (lo1, hi1) = self.span(a);
            let (lo2, hi2) = other.span(a);
            if lo2 < lo1 || hi2 > hi1 {
                return false;
            }
        }
        true
    }

    /// Offset of `other` relative to `self` in units of the (common-level)
    /// box side.  Panics if the levels differ.
    pub fn offset(&self, other: &MortonKey) -> (i64, i64, i64) {
        assert_eq!(self.level, other.level, "offset requires same-level keys");
        (
            other.x as i64 - self.x as i64,
            other.y as i64 - self.y as i64,
            other.z as i64 - self.z as i64,
        )
    }
}

/// Spread the low 21 bits of `v` so consecutive bits land 3 apart.
fn spread(v: u32) -> u64 {
    let mut x = (v as u64) & 0x1f_ffff;
    x = (x | (x << 32)) & 0x1f00000000ffff;
    x = (x | (x << 16)) & 0x1f0000ff0000ff;
    x = (x | (x << 8)) & 0x100f00f00f00f00f;
    x = (x | (x << 4)) & 0x10c30c30c30c30c3;
    x = (x | (x << 2)) & 0x1249249249249249;
    x
}

/// Full-depth Morton code of deep-grid coordinates (used to sort points).
pub fn deep_code(x: u32, y: u32, z: u32) -> u64 {
    spread(x) | (spread(y) << 1) | (spread(z) << 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_parent_roundtrip() {
        let k = MortonKey::new(3, 5, 2, 7);
        for oct in 0..8 {
            let c = k.child(oct);
            assert_eq!(c.parent(), k);
            assert_eq!(c.octant(), oct);
        }
    }

    #[test]
    fn root_is_own_parent() {
        assert_eq!(MortonKey::ROOT.parent(), MortonKey::ROOT);
    }

    #[test]
    fn same_level_adjacency_matches_offset_rule() {
        // At a common level, adjacency <=> every |offset| <= 1.
        let a = MortonKey::new(4, 8, 8, 8);
        for dx in -3i64..=3 {
            for dy in -3i64..=3 {
                for dz in -3i64..=3 {
                    let b = MortonKey::new(4, (8 + dx) as u32, (8 + dy) as u32, (8 + dz) as u32);
                    let expect = dx.abs() <= 1 && dy.abs() <= 1 && dz.abs() <= 1;
                    assert_eq!(a.adjacent(&b), expect, "offset ({dx},{dy},{dz})");
                    assert_eq!(a.well_separated(&b), !expect);
                }
            }
        }
    }

    #[test]
    fn cross_level_adjacency() {
        // A level-2 box and the level-3 box directly touching its face.
        let big = MortonKey::new(2, 1, 1, 1); // spans [1/4,2/4) per axis
        let touching = MortonKey::new(3, 4, 2, 2); // x in [4/8,5/8): touches big's x-hi face
        assert!(big.adjacent(&touching));
        let separated = MortonKey::new(3, 5, 2, 2); // gap of one level-3 box in x
        assert!(!big.adjacent(&separated));
    }

    #[test]
    fn box_adjacent_to_itself_and_children() {
        let k = MortonKey::new(5, 10, 20, 30);
        assert!(k.adjacent(&k));
        assert!(k.adjacent(&k.child(0)));
        assert!(k.contains(&k.child(7)));
        assert!(!k.child(0).contains(&k));
    }

    #[test]
    fn contains_is_nesting() {
        let k = MortonKey::new(2, 1, 2, 3);
        let deep = k.child(3).child(5);
        assert!(k.contains(&deep));
        let other = MortonKey::new(2, 0, 2, 3).child(0).child(0);
        assert!(!k.contains(&other));
    }

    #[test]
    fn codes_order_siblings_by_octant() {
        let k = MortonKey::new(6, 11, 22, 33);
        let mut codes: Vec<u64> = (0..8).map(|o| k.child(o).code()).collect();
        let sorted = {
            let mut s = codes.clone();
            s.sort_unstable();
            s
        };
        codes.sort_unstable();
        assert_eq!(codes, sorted);
        // All 8 children share the parent's code prefix.
        for o in 0..8 {
            assert_eq!(k.child(o).code() >> 3, k.code());
        }
    }

    #[test]
    fn deep_code_is_monotone_in_each_axis_locally() {
        assert!(deep_code(0, 0, 0) < deep_code(1, 0, 0));
        assert!(deep_code(0, 0, 0) < deep_code(0, 1, 0));
        assert!(deep_code(0, 0, 0) < deep_code(0, 0, 1));
    }

    #[test]
    fn offset_same_level() {
        let a = MortonKey::new(3, 1, 2, 3);
        let b = MortonKey::new(3, 4, 0, 3);
        assert_eq!(a.offset(&b), (3, -2, 0));
    }
}
