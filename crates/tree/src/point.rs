//! 3-D points with the handful of vector operations the trees and kernels
//! need.  Kept deliberately minimal — no general vector-math dependency.

use std::ops::{Add, Mul, Sub};

/// A point (or displacement) in 3-D space.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Point3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Point3 {
    /// Construct from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Point3 { x, y, z }
    }

    /// The origin.
    pub const ZERO: Point3 = Point3::new(0.0, 0.0, 0.0);

    /// Euclidean norm.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm2().sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm2(&self) -> f64 {
        self.x * self.x + self.y * self.y + self.z * self.z
    }

    /// Chebyshev (max) norm — the natural norm for box adjacency.
    #[inline]
    pub fn norm_max(&self) -> f64 {
        self.x.abs().max(self.y.abs()).max(self.z.abs())
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn dist(&self, other: &Point3) -> f64 {
        (*self - *other).norm()
    }

    /// Dot product.
    #[inline]
    pub fn dot(&self, other: &Point3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(&self, other: &Point3) -> Point3 {
        Point3::new(
            self.x.min(other.x),
            self.y.min(other.y),
            self.z.min(other.z),
        )
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(&self, other: &Point3) -> Point3 {
        Point3::new(
            self.x.max(other.x),
            self.y.max(other.y),
            self.z.max(other.z),
        )
    }

    /// Component by axis index (0 = x, 1 = y, 2 = z).
    #[inline]
    pub fn axis(&self, a: usize) -> f64 {
        match a {
            0 => self.x,
            1 => self.y,
            _ => self.z,
        }
    }
}

impl Add for Point3 {
    type Output = Point3;
    #[inline]
    fn add(self, o: Point3) -> Point3 {
        Point3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Point3 {
    type Output = Point3;
    #[inline]
    fn sub(self, o: Point3) -> Point3 {
        Point3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Point3 {
    type Output = Point3;
    #[inline]
    fn mul(self, s: f64) -> Point3 {
        Point3::new(self.x * s, self.y * s, self.z * s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_and_distance() {
        let p = Point3::new(3.0, 4.0, 0.0);
        assert_eq!(p.norm(), 5.0);
        assert_eq!(p.norm2(), 25.0);
        assert_eq!(p.norm_max(), 4.0);
        assert_eq!(p.dist(&Point3::ZERO), 5.0);
    }

    #[test]
    fn arithmetic() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(0.5, -1.0, 2.0);
        assert_eq!(a + b, Point3::new(1.5, 1.0, 5.0));
        assert_eq!(a - b, Point3::new(0.5, 3.0, 1.0));
        assert_eq!(a * 2.0, Point3::new(2.0, 4.0, 6.0));
        assert_eq!(a.dot(&b), 0.5 - 2.0 + 6.0);
    }

    #[test]
    fn min_max_axis() {
        let a = Point3::new(1.0, 5.0, -2.0);
        let b = Point3::new(2.0, 0.0, -1.0);
        assert_eq!(a.min(&b), Point3::new(1.0, 0.0, -2.0));
        assert_eq!(a.max(&b), Point3::new(2.0, 5.0, -1.0));
        assert_eq!(a.axis(0), 1.0);
        assert_eq!(a.axis(1), 5.0);
        assert_eq!(a.axis(2), -2.0);
    }
}
