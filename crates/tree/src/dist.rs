//! Point distributions used by the paper's experiments.
//!
//! The paper evaluates two data sets: points **uniform in a cube** (fairly
//! uniform dual trees, short critical path) and points **uniform on the
//! surface of a sphere** (highly non-uniform trees, long critical path).  A
//! Plummer model is included as a third, astrophysics-flavoured stress case.

use crate::Point3;
use rand::distributions::{Distribution as RandDistribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Named distribution selector, convenient for harness CLIs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Distribution {
    /// Uniform in the cube `[-1, 1]³`.
    Cube,
    /// Uniform on the surface of the unit sphere.
    Sphere,
    /// Plummer model (centrally concentrated), truncated at radius 10.
    Plummer,
}

impl Distribution {
    /// Generate `n` points with the given RNG seed.
    pub fn generate(self, n: usize, seed: u64) -> Vec<Point3> {
        match self {
            Distribution::Cube => uniform_cube(n, seed),
            Distribution::Sphere => sphere_surface(n, seed),
            Distribution::Plummer => plummer(n, seed),
        }
    }

    /// Parse from the names used by the benchmark harness.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "cube" => Some(Distribution::Cube),
            "sphere" => Some(Distribution::Sphere),
            "plummer" => Some(Distribution::Plummer),
            _ => None,
        }
    }
}

/// `n` points uniform in the cube `[-1, 1]³`.
pub fn uniform_cube(n: usize, seed: u64) -> Vec<Point3> {
    let mut rng = StdRng::seed_from_u64(seed);
    let u = Uniform::new_inclusive(-1.0f64, 1.0);
    (0..n)
        .map(|_| Point3::new(u.sample(&mut rng), u.sample(&mut rng), u.sample(&mut rng)))
        .collect()
}

/// `n` points uniform on the surface of the unit sphere (Marsaglia method
/// via the archimedes/cylinder projection, which is exactly uniform).
pub fn sphere_surface(n: usize, seed: u64) -> Vec<Point3> {
    let mut rng = StdRng::seed_from_u64(seed);
    let uz = Uniform::new_inclusive(-1.0f64, 1.0);
    let uphi = Uniform::new(0.0f64, std::f64::consts::TAU);
    (0..n)
        .map(|_| {
            let z: f64 = uz.sample(&mut rng);
            let phi: f64 = uphi.sample(&mut rng);
            let r = (1.0 - z * z).max(0.0).sqrt();
            Point3::new(r * phi.cos(), r * phi.sin(), z)
        })
        .collect()
}

/// `n` points drawn from a Plummer sphere (scale radius 1), truncated at
/// radius 10 to keep the domain bounded.
pub fn plummer(n: usize, seed: u64) -> Vec<Point3> {
    let mut rng = StdRng::seed_from_u64(seed);
    let u01 = Uniform::new(0.0f64, 1.0);
    let uz = Uniform::new_inclusive(-1.0f64, 1.0);
    let uphi = Uniform::new(0.0f64, std::f64::consts::TAU);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        // Inverse-CDF radius for the Plummer cumulative mass profile.
        let m: f64 = u01.sample(&mut rng).clamp(1e-12, 1.0 - 1e-12);
        let r = 1.0 / (m.powf(-2.0 / 3.0) - 1.0).sqrt();
        if r > 10.0 {
            continue;
        }
        let z: f64 = uz.sample(&mut rng);
        let phi: f64 = uphi.sample(&mut rng);
        let s = (1.0 - z * z).max(0.0).sqrt();
        out.push(Point3::new(r * s * phi.cos(), r * s * phi.sin(), r * z));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_points_in_bounds_and_seeded() {
        let a = uniform_cube(1000, 7);
        let b = uniform_cube(1000, 7);
        let c = uniform_cube(1000, 8);
        assert_eq!(a.len(), 1000);
        assert_eq!(a, b, "same seed must reproduce");
        assert_ne!(a, c, "different seeds must differ");
        for p in &a {
            assert!(p.x.abs() <= 1.0 && p.y.abs() <= 1.0 && p.z.abs() <= 1.0);
        }
    }

    #[test]
    fn sphere_points_on_unit_sphere() {
        let pts = sphere_surface(2000, 3);
        for p in &pts {
            assert!((p.norm() - 1.0).abs() < 1e-12);
        }
        // Uniformity smoke check: mean z should be near 0.
        let mz: f64 = pts.iter().map(|p| p.z).sum::<f64>() / pts.len() as f64;
        assert!(mz.abs() < 0.05, "mean z = {mz}");
    }

    #[test]
    fn sphere_octant_balance() {
        // Each octant should hold roughly 1/8 of the points.
        let pts = sphere_surface(16000, 11);
        let mut counts = [0usize; 8];
        for p in &pts {
            let o = (p.x > 0.0) as usize + 2 * (p.y > 0.0) as usize + 4 * (p.z > 0.0) as usize;
            counts[o] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 2000.0).abs() < 300.0, "octant count {c}");
        }
    }

    #[test]
    fn plummer_truncated_and_concentrated() {
        let pts = plummer(5000, 5);
        assert_eq!(pts.len(), 5000);
        let mut inside_unit = 0usize;
        for p in &pts {
            assert!(p.norm() <= 10.0 + 1e-9);
            if p.norm() < 1.0 {
                inside_unit += 1;
            }
        }
        // Plummer: ~35% of mass inside the scale radius (1/(1+1)^{3/2} ≈ 0.3536).
        let frac = inside_unit as f64 / 5000.0;
        assert!((frac - 0.3536).abs() < 0.05, "fraction inside r=1: {frac}");
    }

    #[test]
    fn selector_parse_and_generate() {
        assert_eq!(Distribution::parse("cube"), Some(Distribution::Cube));
        assert_eq!(Distribution::parse("sphere"), Some(Distribution::Sphere));
        assert_eq!(Distribution::parse("plummer"), Some(Distribution::Plummer));
        assert_eq!(Distribution::parse("torus"), None);
        assert_eq!(Distribution::Cube.generate(10, 1).len(), 10);
    }
}
