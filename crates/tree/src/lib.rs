//! Adaptive dual octrees and interaction lists for hierarchical multipole
//! methods.
//!
//! The paper partitions the *source* and *target* ensembles separately into
//! two trees of nested boxes over the common computational domain (the
//! smallest cube containing both ensembles), prunes empty children, and stops
//! refining a box once it holds fewer than a *threshold* number of points
//! (60 in every experiment).  Each target box is then connected to up to four
//! lists of source boxes (the paper's `L1..L4`, classically the U/V/W/X
//! lists), and the `L2` (V) list is further partitioned into six directional
//! lists that feed the plane-wave *intermediate expansion* translations of
//! the merge-and-shift technique.
//!
//! This crate provides:
//!
//! * [`Point3`] and the point [`dist`]ributions used in the paper (uniform
//!   cube, uniform sphere surface) plus a Plummer model,
//! * [`MortonKey`] — integer box coordinates on the level grid,
//! * [`Octree`] — adaptive, empty-pruned, threshold-refined octree,
//! * [`DualTree`] + [`InteractionLists`] — the full adaptive dual-tree
//!   traversal producing `L1..L4` and the directional partition of `L2`.

pub mod build;
pub mod dist;
pub mod domain;
pub mod lists;
pub mod morton;
pub mod point;
pub mod stats;

pub use build::{BuildParams, Octree, OctreeNode};
pub use dist::{plummer, sphere_surface, uniform_cube, Distribution};
pub use domain::Domain;
pub use lists::{
    box_lists_for, BoxLists, Direction, DualTree, InteractionLists, ListEntry, TreeTopology,
};
pub use morton::MortonKey;
pub use point::Point3;
pub use stats::TreeStats;
