//! Property tests of tree construction and interaction lists over
//! arbitrary point geometries.

use dashmm_tree::{BuildParams, Domain, DualTree, Octree, Point3};
use proptest::prelude::*;

/// Arbitrary point clouds: a mix of uniform scatter and tight clusters,
/// scaled/offset arbitrarily.
fn cloud(max_points: usize) -> impl Strategy<Value = Vec<Point3>> {
    (
        1usize..max_points,
        prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0), 1..4),
        0.01f64..1.0,
        any::<u64>(),
    )
        .prop_map(|(n, centers, spread, seed)| {
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            };
            (0..n)
                .map(|i| {
                    let (cx, cy, cz) = centers[i % centers.len()];
                    Point3::new(
                        cx + next() * spread,
                        cy + next() * spread,
                        cz + next() * spread,
                    )
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tree_invariants_hold(points in cloud(400), threshold in 1usize..50) {
        let domain = Domain::containing(&[&points], 1e-4);
        let tree = Octree::build(domain, &points, BuildParams { threshold, max_level: 20 });
        // Every point sits inside its leaf's box.
        let mut covered = 0usize;
        for leaf in tree.leaves() {
            let c = tree.center_of(leaf);
            let h = tree.half_of(leaf);
            for p in tree.points_of(leaf) {
                prop_assert!((*p - c).norm_max() <= h * (1.0 + 1e-9));
            }
            covered += tree.node(leaf).count;
        }
        prop_assert_eq!(covered, points.len());
        // Interior boxes exceed the threshold (why they split), except when
        // the max-level cap forced a leaf.
        for n in tree.nodes() {
            if !n.is_leaf() {
                prop_assert!(n.count > threshold);
            }
        }
    }

    #[test]
    fn interaction_lists_cover_all_pairs(
        src in cloud(120),
        tgt in cloud(120),
        threshold in 1usize..20,
    ) {
        let dt = DualTree::build(&src, &tgt, BuildParams { threshold, max_level: 20 });
        let lists = dt.interaction_lists();
        // Σ over entries of |src descendants|·|tgt descendants| must equal
        // exactly |src|·|tgt| — each pair covered exactly once (weaker but
        // much faster than the per-pair matrix check in the unit tests).
        let mut covered: u64 = 0;
        for t in 0..dt.target().num_nodes() as u32 {
            let bl = lists.of(t);
            let tn = dt.target().node(t).count as u64;
            for &s in &bl.l1 {
                covered += dt.source().node(s).count as u64 * tn;
            }
            for e in &bl.l2 {
                covered += dt.source().node(e.source).count as u64 * tn;
            }
            for &s in &bl.l3 {
                covered += dt.source().node(s).count as u64 * tn;
            }
            for &s in &bl.l4 {
                covered += dt.source().node(s).count as u64 * tn;
            }
        }
        prop_assert_eq!(covered, src.len() as u64 * tgt.len() as u64);
    }

    #[test]
    fn morton_order_is_stable_under_permutation(points in cloud(200)) {
        // Building from a shuffled copy must produce the same leaf boxes.
        let domain = Domain::containing(&[&points], 1e-4);
        let params = BuildParams { threshold: 10, max_level: 20 };
        let a = Octree::build(domain, &points, params);
        let mut shuffled = points.clone();
        shuffled.reverse();
        let b = Octree::build(domain, &shuffled, params);
        let mut ka: Vec<_> = a.leaves().iter().map(|&l| a.node(l).key).collect();
        let mut kb: Vec<_> = b.leaves().iter().map(|&l| b.node(l).key).collect();
        ka.sort();
        kb.sort();
        prop_assert_eq!(ka, kb);
    }
}
