//! Offline shim for the slice of `criterion` this workspace uses: groups,
//! `Bencher::iter`, `BenchmarkId`, the `criterion_group!`/`criterion_main!`
//! macros and `black_box`.
//!
//! Each benchmark runs a warm-up, then `sample_size` timed samples within
//! the measurement window, and prints one line with the median and mean
//! nanoseconds per iteration.  Setting `DASHMM_BENCH_FAST=1` shrinks the
//! warm-up and measurement windows for CI smoke runs.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing driver passed to benchmark closures.
pub struct Bencher<'a> {
    samples_ns: &'a mut Vec<f64>,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher<'_> {
    /// Time `f`, collecting one duration sample per batch of iterations.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut iters = 0u64;
        while warm_start.elapsed() < self.warm_up || iters == 0 {
            black_box(f());
            iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters as f64;
        // Batch so one sample costs roughly measurement/sample_size.
        let per_sample = self.measurement.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / per_iter.max(1e-9)).round() as u64).max(1);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t0.elapsed().as_secs_f64() * 1e9 / batch as f64;
            self.samples_ns.push(ns);
        }
    }
}

#[derive(Clone, Debug)]
struct Config {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Config {
    fn fast_mode() -> bool {
        std::env::var("DASHMM_BENCH_FAST")
            .map(|v| v == "1")
            .unwrap_or(false)
    }

    fn effective(&self) -> Config {
        if Config::fast_mode() {
            Config {
                sample_size: self.sample_size.min(5),
                warm_up: self.warm_up.min(Duration::from_millis(20)),
                measurement: self.measurement.min(Duration::from_millis(100)),
            }
        } else {
            self.clone()
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 100,
            warm_up: Duration::from_secs(3),
            measurement: Duration::from_secs(5),
        }
    }
}

/// The benchmark manager.
#[derive(Default)]
pub struct Criterion {
    cfg: Config,
}

impl Criterion {
    /// Set the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.cfg.sample_size = n.max(1);
        self
    }

    /// Set the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.cfg.warm_up = d;
        self
    }

    /// Set the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.cfg.measurement = d;
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            cfg: self.cfg.clone(),
            _parent: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher<'_>),
    ) -> &mut Self {
        let cfg = self.cfg.clone();
        run_one("", &cfg, &id.into(), f);
        self
    }
}

/// A named group sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    cfg: Config,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(1);
        self
    }

    /// Override the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement = d;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher<'_>),
    ) -> &mut Self {
        run_one(&self.name, &self.cfg, &id.into(), f);
        self
    }

    /// Finish the group (printing is per-benchmark; nothing buffered).
    pub fn finish(self) {}
}

fn run_one(group: &str, cfg: &Config, id: &BenchmarkId, mut f: impl FnMut(&mut Bencher<'_>)) {
    let cfg = cfg.effective();
    let mut samples = Vec::with_capacity(cfg.sample_size);
    let mut b = Bencher {
        samples_ns: &mut samples,
        sample_size: cfg.sample_size,
        warm_up: cfg.warm_up,
        measurement: cfg.measurement,
    };
    f(&mut b);
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = if samples.is_empty() {
        0.0
    } else {
        samples[samples.len() / 2]
    };
    let mean = samples.iter().sum::<f64>() / samples.len().max(1) as f64;
    let label = if group.is_empty() {
        id.label.clone()
    } else {
        format!("{group}/{}", id.label)
    };
    println!("bench {label:<40} median {median:>12.1} ns/iter  mean {mean:>12.1} ns/iter");
}

/// Collect benchmark targets into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_closure() {
        let mut c = quick();
        let mut count = 0u64;
        c.bench_function("counting", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = quick();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut hits = 0u64;
        g.bench_function(BenchmarkId::from_parameter("x"), |b| b.iter(|| hits += 1));
        g.finish();
        assert!(hits >= 2);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("op", 42).label, "op/42");
        assert_eq!(BenchmarkId::from_parameter("S2M").label, "S2M");
    }
}
