//! Offline shim for the slice of `rand` 0.8 used by this workspace: a
//! seedable RNG (`StdRng`) and uniform `f64` sampling.  The generator is
//! xoshiro256++ seeded through splitmix64 — deterministic per seed, but the
//! sequences differ from upstream rand's ChaCha12-based `StdRng`.

/// Core RNG interface (the subset of `rand_core::RngCore` we need).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the subset of `rand::SeedableRng` we need).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed, expanded to full generator state.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ generator standing in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    use super::RngCore;

    /// Types that produce samples from an RNG.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }

    /// Uniform `f64` distribution over a half-open or closed interval.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform {
        lo: f64,
        span: f64,
        inclusive: bool,
    }

    impl Uniform {
        /// Uniform over `[lo, hi)`.
        pub fn new(lo: f64, hi: f64) -> Self {
            assert!(lo < hi, "Uniform::new requires lo < hi");
            Uniform {
                lo,
                span: hi - lo,
                inclusive: false,
            }
        }

        /// Uniform over `[lo, hi]`.
        pub fn new_inclusive(lo: f64, hi: f64) -> Self {
            assert!(lo <= hi, "Uniform::new_inclusive requires lo <= hi");
            Uniform {
                lo,
                span: hi - lo,
                inclusive: true,
            }
        }
    }

    impl Distribution<f64> for Uniform {
        fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
            let bits = rng.next_u64() >> 11; // 53 significant bits
            let unit = if self.inclusive {
                bits as f64 / ((1u64 << 53) - 1) as f64 // [0, 1]
            } else {
                bits as f64 / (1u64 << 53) as f64 // [0, 1)
            };
            self.lo + unit * self.span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn seeded_sequences_reproduce() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_respects_bounds_and_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let u = Uniform::new(-1.0, 1.0);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = u.sample(&mut rng);
            assert!((-1.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn inclusive_upper_bound_allowed() {
        let mut rng = StdRng::seed_from_u64(1);
        let u = Uniform::new_inclusive(0.0, 1.0);
        for _ in 0..1000 {
            let x = u.sample(&mut rng);
            assert!((0.0..=1.0).contains(&x));
        }
    }
}
