//! Offline shim for the slice of `proptest` this workspace uses: the
//! `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, numeric range and
//! tuple strategies, `any::<T>()`, `prop_map`, and `prop::collection::vec`.
//!
//! Differences from real proptest: no input shrinking, no failure
//! persistence, and each test's RNG seed is derived from the test's name —
//! runs are deterministic and reproducible, case-for-case.

use std::fmt;

/// Error produced by a failed `prop_assert!`.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test deterministic RNG (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed deterministically from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h | 1)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// Test-run configuration (`cases` is the only knob the shim honours).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator (no shrinking in the shim).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through a function.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, broadly scaled values; the workspace's numeric property
        // tests expect usable magnitudes rather than bit-pattern noise.
        (rng.next_f64() - 0.5) * 2e6
    }
}

/// Strategy for `any::<T>()`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for a type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::generate(&self.len, rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` namespace used by `prop::collection::vec`.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Assert inside a proptest body; failure aborts the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {} ({:?} vs {:?}): {}",
            stringify!($a),
            stringify!($b),
            a,
            b,
            format!($($fmt)*)
        );
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random instantiations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!("proptest {} case {case}/{} failed: {e}", stringify!($name), config.cases);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..200 {
            let u = Strategy::generate(&(3usize..7), &mut rng);
            assert!((3..7).contains(&u));
            let f = Strategy::generate(&(-1.0f64..1.0), &mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let strat = (1usize..3, 0u64..10).prop_map(|(a, b)| a as u64 * 100 + b);
        let mut rng = TestRng::from_name("compose");
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!((100..310).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_length_in_range() {
        let strat = collection::vec(0.0f64..1.0, 2..5);
        let mut rng = TestRng::from_name("vec");
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_asserts(x in 1usize..10, y in any::<u64>()) {
            prop_assert!((1..10).contains(&x), "x out of range: {x}");
            prop_assert_eq!(y.wrapping_add(0), y);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(v in collection::vec(0u32..5, 1..4)) {
            prop_assert!(!v.is_empty());
        }
    }
}
