//! Offline shim for `parking_lot`'s `Mutex` and `RwLock`: thin,
//! non-poisoning wrappers over `std::sync`.  A poisoned std lock (some
//! holder panicked) is recovered rather than propagated, matching
//! parking_lot's no-poisoning semantics.

/// Guard types are the std guards; callers only use them through `Deref`.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Non-poisoning mutex with parking_lot's `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (blocking; never poisons).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader–writer lock with parking_lot's signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = Arc::new(RwLock::new(vec![1, 2]));
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a, *b);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        assert_eq!(*m.lock(), 1);
    }
}
