//! Offline shim for the slices of `crossbeam` this workspace uses:
//! scoped threads (`thread::scope`) and work-stealing deques
//! (`deque::{Injector, Worker, Stealer, Steal}`).
//!
//! The deques are lock-based (a `Mutex<VecDeque>` per queue) rather than
//! the lock-free Chase–Lev deques of real crossbeam.  The worker's own
//! queue mutex is uncontended except during steals, which keeps the
//! scheduler hot path cheap at this workspace's scale.

pub mod thread {
    use std::any::Any;

    /// Scope handle passed to [`scope`] and to every spawned closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread; the closure receives the scope, so
        /// spawned threads can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Create a scope for spawned threads; joins them all before returning.
    ///
    /// Unlike real crossbeam this cannot observe child panics as an `Err`
    /// (std's scope resumes the unwind at join instead), so the `Ok` arm is
    /// the only one produced; the signature is kept for call-site
    /// compatibility.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// A race was lost; the caller may retry.
        Retry,
    }

    enum Order {
        Lifo,
        Fifo,
    }

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        order: Order,
    }

    /// The owner side of a worker deque.
    pub struct Worker<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Worker<T> {
        /// New deque whose owner pops most-recently-pushed first.
        pub fn new_lifo() -> Self {
            Worker {
                shared: Arc::new(Shared {
                    queue: Mutex::new(VecDeque::new()),
                    order: Order::Lifo,
                }),
            }
        }

        /// New deque whose owner pops oldest-first.
        pub fn new_fifo() -> Self {
            Worker {
                shared: Arc::new(Shared {
                    queue: Mutex::new(VecDeque::new()),
                    order: Order::Fifo,
                }),
            }
        }

        /// Push a task onto the owner end.
        pub fn push(&self, task: T) {
            self.shared.queue.lock().unwrap().push_back(task);
        }

        /// Pop a task from the owner end.
        pub fn pop(&self) -> Option<T> {
            let mut q = self.shared.queue.lock().unwrap();
            match self.shared.order {
                Order::Lifo => q.pop_back(),
                Order::Fifo => q.pop_front(),
            }
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.shared.queue.lock().unwrap().is_empty()
        }

        /// Create a stealer handle for other threads.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    /// The thief side of a worker deque.
    pub struct Stealer<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Stealer<T> {
        /// Steal one task from the opposite end of the owner.
        pub fn steal(&self) -> Steal<T> {
            match self.shared.queue.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    /// A shared FIFO injection queue.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// New empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Push a task onto the global queue.
        pub fn push(&self, task: T) {
            self.queue.lock().unwrap().push_back(task);
        }

        /// Steal one task.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the injector is currently empty (racy by nature — a
        /// hint for occupancy masks, not a synchronization primitive; real
        /// crossbeam exposes the same method with the same caveat).
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }

        /// Steal a batch of tasks, moving all but the first into `worker`
        /// and returning the first.
        pub fn steal_batch_and_pop(&self, worker: &Worker<T>) -> Steal<T> {
            const BATCH: usize = 16;
            let batch: Vec<T> = {
                let mut q = self.queue.lock().unwrap();
                let take = q.len().min(BATCH);
                q.drain(..take).collect()
            };
            let mut it = batch.into_iter();
            match it.next() {
                None => Steal::Empty,
                Some(first) => {
                    for t in it {
                        worker.push(t);
                    }
                    Steal::Success(first)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};

    #[test]
    fn lifo_worker_order() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn stealer_takes_oldest() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn injector_batch_refills_worker() {
        let inj = Injector::new();
        let w = Worker::new_fifo();
        for i in 0..5 {
            inj.push(i);
        }
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        assert_eq!(w.pop(), Some(1));
        assert!(!w.is_empty());
        assert_eq!(inj.steal_batch_and_pop(&Worker::new_fifo()), Steal::Empty);
    }

    #[test]
    fn scoped_threads_join() {
        let mut data = vec![0u64; 4];
        super::thread::scope(|scope| {
            for (i, d) in data.iter_mut().enumerate() {
                scope.spawn(move |_| *d = i as u64 + 1);
            }
        })
        .unwrap();
        assert_eq!(data, vec![1, 2, 3, 4]);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        super::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        })
        .unwrap();
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}
