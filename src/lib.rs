//! # dashmm
//!
//! Facade crate for the `dashmm-rs` workspace — a reproduction of
//! *“Scalable Hierarchical Multipole Methods using an Asynchronous
//! Many-Tasking Runtime System”* (DeBuhr, Zhang, D’Alessandro, IPDPSW 2017).
//!
//! This crate re-exports the public API of every subsystem so applications
//! can depend on a single crate:
//!
//! * [`runtime`] — the asynchronous many-tasking runtime (HPX-5 analogue),
//! * [`tree`] — adaptive dual octrees and interaction lists,
//! * [`kernels`] — Laplace/Yukawa kernels and the direct-summation oracle,
//! * [`expansion`] — multipole/local/intermediate expansions and operators,
//! * [`dag`] — the explicit dataflow DAG and distribution policies,
//! * [`sim`] — the discrete-event cluster simulator used for scaling studies,
//! * the top-level [`DashmmBuilder`] evaluator API from `dashmm-core`.
//!
//! See `examples/quickstart.rs` for a minimal end-to-end evaluation.

pub use dashmm_core::*;

/// Dense linear algebra used by the expansion operators.
pub mod linalg {
    pub use dashmm_linalg::*;
}

/// Adaptive dual octrees, interaction lists and point distributions.
pub mod tree {
    pub use dashmm_tree::*;
}

/// Interaction kernels and the O(N²) direct-summation oracle.
pub mod kernels {
    pub use dashmm_kernels::*;
}

/// Equivalent-surface and plane-wave expansions with all FMM operators.
pub mod expansion {
    pub use dashmm_expansion::*;
}

/// Explicit dataflow DAG: node/edge classes, statistics, distribution.
pub mod dag {
    pub use dashmm_dag::*;
}

/// The asynchronous many-tasking runtime.
pub mod runtime {
    pub use dashmm_amt::*;
}

/// Discrete-event simulator of the runtime for cluster-scale studies.
pub mod sim {
    pub use dashmm_sim::*;
}
