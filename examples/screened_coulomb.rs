//! Screened Coulomb (Yukawa) interactions: the paper's scale-variant
//! kernel.
//!
//! `e^{-λr}/r` has no scale invariance: every tree level needs its own
//! operator tables and the *length* of the plane-wave intermediate
//! expansions depends on the depth in the hierarchy (paper §V-A).  This
//! example evaluates ionic-solution-style potentials at three screening
//! lengths, prints the per-level expansion sizes that make the kernel's
//! tasks heavier than Laplace's, and validates accuracy.
//!
//! Run: `cargo run --release --example screened_coulomb`

use dashmm::expansion::{AccuracyParams, OperatorLibrary};
use dashmm::kernels::{direct_sum_at, Kernel, Yukawa};
use dashmm::tree::uniform_cube;
use dashmm::{DashmmBuilder, Method};

fn main() {
    let n = 10_000;
    let sources = uniform_cube(n, 7);
    let targets = uniform_cube(n, 8);
    // Alternating charges, like an ionic melt.
    let charges: Vec<f64> = (0..n)
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    let src_arr: Vec<[f64; 3]> = sources.iter().map(|p| [p.x, p.y, p.z]).collect();

    for lambda in [0.5, 1.0, 2.0] {
        let kernel = Yukawa::new(lambda);
        println!("\n=== Yukawa λ = {lambda} ===");

        // Show the scale variance: intermediate-expansion length per level.
        let lib = OperatorLibrary::new(kernel, AccuracyParams::three_digit(), 2.0, true);
        print!("plane-wave terms by level:");
        for level in 2..=5u8 {
            let t = lib.tables(level);
            print!(
                "  L{level}: {} (κ·side = {:.2})",
                t.planewave_len() / 2,
                kernel.scaled_screening(t.side())
            );
        }
        println!();

        let eval = DashmmBuilder::new(kernel)
            .method(Method::AdvancedFmm)
            .threshold(40)
            .build(&sources, &charges, &targets);
        let out = eval.evaluate();
        println!(
            "evaluated in {:.1} ms ({} tasks)",
            out.eval_ms, out.report.tasks
        );

        // With alternating charges the potential is a small residual of
        // large cancelling sums, so errors are measured against the RMS
        // potential of the sample (a pointwise relative error would be
        // ill-defined near the zero crossings).
        let sample: Vec<usize> = (0..n).step_by(n / 16).collect();
        let exact: Vec<f64> = sample
            .iter()
            .map(|&i| {
                let t = [targets[i].x, targets[i].y, targets[i].z];
                direct_sum_at(&kernel, &src_arr, &charges, &t)
            })
            .collect();
        let rms = (exact.iter().map(|e| e * e).sum::<f64>() / exact.len() as f64).sqrt();
        let worst = sample
            .iter()
            .zip(&exact)
            .map(|(&i, &e)| (out.potentials[i] - e).abs() / rms)
            .fold(0.0f64, f64::max);
        println!("worst sampled error (relative to RMS potential): {worst:.2e}");
        assert!(worst < 5e-3, "accuracy regression at λ = {lambda}");
    }
    println!("\nscreening shortens the potential's reach; the hierarchy adapts per level.");
}
