//! Barnes–Hut on a Plummer "galaxy": DASHMM's method genericity.
//!
//! DASHMM is generic in the hierarchical method (paper §I): the same trees,
//! runtime and DAG machinery serve Barnes–Hut and both FMMs.  This example
//! computes the self-gravity of a Plummer sphere with Barnes–Hut at two
//! opening angles and with the advanced FMM, comparing cost (tasks, DAG
//! size) and accuracy on a sampled set of bodies.
//!
//! Run: `cargo run --release --example galaxy_barnes_hut`

use dashmm::kernels::{direct_sum_at, Laplace};
use dashmm::tree::plummer;
use dashmm::{DashmmBuilder, Method};

fn main() {
    let n = 15_000;
    // Self-gravity: sources and targets are the same bodies.
    let bodies = plummer(n, 99);
    let masses = vec![1.0 / n as f64; n];
    let src_arr: Vec<[f64; 3]> = bodies.iter().map(|p| [p.x, p.y, p.z]).collect();

    let sample: Vec<usize> = (0..n).step_by(n / 16).collect();
    let exact: Vec<f64> = sample
        .iter()
        .map(|&i| direct_sum_at(&Laplace, &src_arr, &masses, &src_arr[i]))
        .collect();

    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>12}",
        "method", "nodes", "edges", "tasks", "worst rel.err"
    );
    for (label, method) in [
        ("barnes-hut θ=0.7", Method::BarnesHut { theta: 0.7 }),
        ("barnes-hut θ=0.4", Method::BarnesHut { theta: 0.4 }),
        ("advanced fmm", Method::AdvancedFmm),
    ] {
        let eval = DashmmBuilder::new(Laplace)
            .method(method)
            .threshold(60)
            .build(&bodies, &masses, &bodies);
        let out = eval.evaluate();
        let worst = sample
            .iter()
            .zip(&exact)
            .map(|(&i, &e)| ((out.potentials[i] - e) / e).abs())
            .fold(0.0f64, f64::max);
        println!(
            "{:<22} {:>10} {:>10} {:>10} {:>12.2e}",
            label,
            eval.dag().num_nodes(),
            eval.dag().num_edges(),
            out.report.tasks,
            worst
        );
        let bound = match method {
            Method::BarnesHut { theta } => 0.02 * theta, // θ-controlled
            _ => 1e-3,
        };
        assert!(
            worst < bound,
            "{label}: error {worst:.2e} above bound {bound:.2e}"
        );
    }
    println!("\nsmaller θ tightens Barnes–Hut toward the FMM at higher cost;");
    println!("the FMM reaches 3-digit accuracy with O(N) work.");
}
