//! Quickstart: evaluate gravitational potentials with the advanced FMM.
//!
//! Builds two distinct 20 000-point ensembles (as in the paper, the source
//! and target ensembles are the same size and distribution but different
//! draws), evaluates all pairwise `1/r` interactions in O(N) time on the
//! AMT runtime, and validates a sample of targets against exact direct
//! summation.
//!
//! Run: `cargo run --release --example quickstart`

use dashmm::kernels::{direct_sum_at, Laplace};
use dashmm::tree::uniform_cube;
use dashmm::{DashmmBuilder, Method};

fn main() {
    let n = 20_000;
    let sources = uniform_cube(n, 1);
    let targets = uniform_cube(n, 2);
    // Unit masses.
    let charges = vec![1.0; n];

    println!("building trees + operator tables + DAG for n = {n}…");
    let eval = DashmmBuilder::new(Laplace)
        .method(Method::AdvancedFmm) // the paper's merge-and-shift FMM
        .threshold(60) // the paper's refinement threshold
        .machine(1, 2) // one locality, two workers
        .build(&sources, &charges, &targets);
    println!(
        "tree build: {:.1} ms,  DAG assembly: {:.1} ms,  {} nodes / {} edges",
        eval.tree_ms,
        eval.dag_ms,
        eval.dag().num_nodes(),
        eval.dag().num_edges()
    );

    let out = eval.evaluate();
    println!(
        "evaluation: {:.1} ms  ({} tasks, {} inter-locality messages)",
        out.eval_ms, out.report.tasks, out.report.messages
    );

    // Spot-check ten targets against the O(N²) oracle.
    let src_arr: Vec<[f64; 3]> = sources.iter().map(|p| [p.x, p.y, p.z]).collect();
    let mut worst: f64 = 0.0;
    for i in (0..n).step_by(n / 10) {
        let t = [targets[i].x, targets[i].y, targets[i].z];
        let exact = direct_sum_at(&Laplace, &src_arr, &charges, &t);
        let rel = ((out.potentials[i] - exact) / exact).abs();
        worst = worst.max(rel);
        println!(
            "  phi[{i:>5}] = {:>12.6}   exact {:>12.6}   rel.err {rel:.2e}",
            out.potentials[i], exact
        );
    }
    println!("worst sampled relative error: {worst:.2e} (target: 1e-3)");
    assert!(worst < 1e-3, "accuracy regression");
}
