//! The iterative use case (paper §IV): "the FMM is widely used in an
//! iterative procedure where the same DAG is evaluated multiple times for
//! different inputs.  In this use case, the cost of any initial setup can
//! be amortized over the many evaluations."
//!
//! This example runs a damped self-consistency loop: charges are relaxed
//! toward a target potential profile, re-evaluating with
//! `evaluate_with_charges` each sweep — trees, interaction lists, operator
//! tables, the explicit DAG and its distribution are all built once.
//!
//! Run: `cargo run --release --example iterative_field`

use dashmm::kernels::Yukawa;
use dashmm::tree::uniform_cube;
use dashmm::{DashmmBuilder, Method};
use std::time::Instant;

fn main() {
    let n = 8_000;
    let points = uniform_cube(n, 77);
    let mut charges = vec![1.0; n];

    let t0 = Instant::now();
    let eval = DashmmBuilder::new(Yukawa::new(1.0))
        .method(Method::AdvancedFmm)
        .threshold(60)
        .machine(1, 2)
        .build(&points, &charges, &points);
    let setup_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("setup (trees + tables + DAG): {setup_ms:.1} ms");

    // Relax charges so every point's potential approaches the mean —
    // a toy counterion-equilibration sweep.
    let mut eval_ms_total = 0.0;
    for sweep in 0..6 {
        let out = eval.evaluate_with_charges(&charges);
        eval_ms_total += out.eval_ms;
        let mean = out.potentials.iter().sum::<f64>() / n as f64;
        let spread = out
            .potentials
            .iter()
            .map(|p| (p - mean) * (p - mean))
            .sum::<f64>()
            .sqrt()
            / n as f64;
        println!(
            "sweep {sweep}: eval {:.1} ms, potential spread {:.4e}",
            out.eval_ms, spread
        );
        let damping = 0.35;
        for i in 0..n {
            charges[i] *= 1.0 - damping * (out.potentials[i] - mean) / mean;
        }
    }
    println!(
        "\n6 evaluations: {eval_ms_total:.1} ms total — setup ({setup_ms:.1} ms) amortised \
         {:.1}x per evaluation",
        setup_ms / (eval_ms_total / 6.0)
    );
}
