//! A miniature strong-scaling study on the discrete-event cluster
//! simulator — the workflow behind Figure 3, as a library user would
//! script it.
//!
//! Builds the explicit DAG once, redistributes it over 1…64 localities with
//! the paper's FMM policy, and replays it through the virtual 32-core-per-
//! locality machine with a Gemini-like interconnect and the paper's
//! Table II operator costs.
//!
//! Run: `cargo run --release --example cluster_scaling`

use dashmm::dag::{DistributionPolicy, FmmPolicy, NodeClass};
use dashmm::expansion::{AccuracyParams, OperatorLibrary};
use dashmm::kernels::Laplace;
use dashmm::sim::{simulate, CostModel, NetworkModel, SimConfig};
use dashmm::tree::{uniform_cube, BuildParams};
use dashmm::{assemble, block_owner, Method, Problem};

fn main() {
    let n = 60_000;
    let sources = uniform_cube(n, 5);
    let targets = uniform_cube(n, 6);
    let charges = vec![1.0; n];

    let problem = Problem::new(&sources, &charges, &targets, BuildParams::default());
    let lib = OperatorLibrary::new(
        Laplace,
        AccuracyParams::three_digit(),
        problem.tree.domain().side(),
        true,
    );
    let mut asm = assemble(&problem, Method::AdvancedFmm, &lib);
    println!(
        "DAG: {} nodes, {} edges, critical path {} edges",
        asm.dag.num_nodes(),
        asm.dag.num_edges(),
        asm.dag.critical_path_len()
    );

    let cost = CostModel::paper_table2();
    let net = NetworkModel::gemini();
    println!(
        "\n{:>6} {:>12} {:>9} {:>11} {:>10} {:>12}",
        "cores", "t_n [ms]", "speedup", "efficiency", "messages", "remote MB"
    );
    let mut t32 = 0.0;
    for localities in [1usize, 2, 4, 8, 16, 32, 64] {
        // Redistribute for this machine size.
        let src_n = problem.tree.source().points().len();
        let tgt_n = problem.tree.target().points().len();
        let owner = |class: NodeClass, box_id: u32| -> u32 {
            match class {
                NodeClass::S | NodeClass::M | NodeClass::Is => block_owner(
                    problem.tree.source().node(box_id).first,
                    src_n,
                    localities as u32,
                ),
                _ => block_owner(
                    problem.tree.target().node(box_id).first,
                    tgt_n,
                    localities as u32,
                ),
            }
        };
        FmmPolicy::default().assign(&mut asm.dag, localities as u32, &owner);

        let cfg = SimConfig {
            localities,
            cores_per_locality: 32,
            priority: false,
            trace: false,
            levelwise: false,
        };
        let r = simulate(&asm.dag, &cost, &net, &cfg);
        if localities == 1 {
            t32 = r.makespan_us;
        }
        let speedup = t32 / r.makespan_us;
        println!(
            "{:>6} {:>12.2} {:>9.2} {:>10.1}% {:>10} {:>12.2}",
            localities * 32,
            r.makespan_us / 1e3,
            speedup,
            100.0 * speedup / localities as f64,
            r.messages,
            r.bytes as f64 / 1e6
        );
    }
    println!(
        "\nnear-ideal scaling until the DAG runs out of concurrent tasks — Figure 3 in miniature."
    );
}
