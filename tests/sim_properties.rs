//! Property-based tests of the discrete-event simulator: classic
//! list-scheduling bounds and determinism, over random DAGs.

use dashmm::dag::{Dag, DagBuilder, EdgeOp, NodeClass};
use dashmm::sim::{simulate, CoalesceConfig, CostModel, NetworkModel, SimConfig};
use proptest::prelude::*;

/// Random layered DAG with unit-ish costs, everything on locality 0.
fn random_dag() -> impl Strategy<Value = Dag> {
    (2usize..6, 1usize..8, any::<u64>()).prop_map(|(layers, width, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = DagBuilder::new();
        let mut prev: Vec<u32> = Vec::new();
        let mut all: Vec<u32> = Vec::new();
        for layer in 0..layers {
            let count = 1 + (next() as usize) % width;
            let mut cur = Vec::new();
            for _ in 0..count {
                let class = if layer == 0 {
                    NodeClass::S
                } else {
                    NodeClass::M
                };
                let id = b.add_node(class, all.len() as u32, layer as u8, 64);
                if layer > 0 {
                    let k = 1 + (next() as usize) % 2.min(prev.len());
                    for j in 0..k {
                        let src = prev[(next() as usize + j) % prev.len()];
                        b.add_edge(src, EdgeOp::M2M, id, 64, 0);
                    }
                }
                cur.push(id);
                all.push(id);
            }
            prev = cur;
        }
        b.finish()
    })
}

fn unit_cost() -> CostModel {
    CostModel::measured([10.0; 11], 0.0)
}

fn cfg(cores: usize) -> SimConfig {
    SimConfig {
        localities: 1,
        cores_per_locality: cores,
        priority: false,
        trace: false,
        levelwise: false,
    }
}

/// Total edge work in µs.
fn total_work(dag: &Dag) -> f64 {
    dag.num_edges() as f64 * 10.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn makespan_at_least_both_lower_bounds(dag in random_dag(), cores in 1usize..9) {
        let r = simulate(&dag, &unit_cost(), &NetworkModel::ideal(), &cfg(cores));
        // Work bound.
        let work = total_work(&dag);
        prop_assert!(r.makespan_us + 1e-9 >= work / cores as f64,
            "makespan {} below work bound {}", r.makespan_us, work / cores as f64);
        // Critical-path bound: every path's edges execute sequentially
        // (a node's out-edges are processed one after another, so the path
        // bound uses edge costs).
        let cp = dag.critical_path_len() as f64 * 10.0;
        prop_assert!(r.makespan_us + 1e-9 >= cp,
            "makespan {} below critical path bound {cp}", r.makespan_us);
    }

    #[test]
    fn single_core_equals_total_work(dag in random_dag()) {
        let r = simulate(&dag, &unit_cost(), &NetworkModel::ideal(), &cfg(1));
        // One core, no overheads: the schedule is a permutation of all
        // edge work.
        prop_assert!((r.makespan_us - total_work(&dag)).abs() < 1e-6);
    }

    #[test]
    fn simulation_is_deterministic(dag in random_dag(), cores in 1usize..6) {
        let a = simulate(&dag, &unit_cost(), &NetworkModel::ideal(), &cfg(cores));
        let b = simulate(&dag, &unit_cost(), &NetworkModel::ideal(), &cfg(cores));
        prop_assert_eq!(a.makespan_us, b.makespan_us);
        prop_assert_eq!(a.tasks, b.tasks);
    }

    #[test]
    fn more_cores_never_hurt_much(dag in random_dag()) {
        // List scheduling can exhibit Graham anomalies, but they are
        // bounded: T_m ≤ 2·T_{m'} for m ≥ m'.
        let t2 = simulate(&dag, &unit_cost(), &NetworkModel::ideal(), &cfg(2)).makespan_us;
        let t8 = simulate(&dag, &unit_cost(), &NetworkModel::ideal(), &cfg(8)).makespan_us;
        prop_assert!(t8 <= t2 * 2.0 + 1e-9);
    }

    #[test]
    fn busy_time_equals_work_on_ideal_network(dag in random_dag(), cores in 1usize..5) {
        let r = simulate(&dag, &unit_cost(), &NetworkModel::ideal(), &cfg(cores));
        let busy: f64 = r.busy_us.iter().sum();
        prop_assert!((busy - total_work(&dag)).abs() < 1e-6,
            "busy {} vs work {}", busy, total_work(&dag));
    }

    #[test]
    fn priority_mode_preserves_task_count(dag in random_dag(), cores in 1usize..5) {
        let base = simulate(&dag, &unit_cost(), &NetworkModel::ideal(), &cfg(cores));
        let pcfg = SimConfig { priority: true, ..cfg(cores) };
        let prio = simulate(&dag, &unit_cost(), &NetworkModel::ideal(), &pcfg);
        // Priority splitting may add tasks but never loses edge work.
        let b: f64 = base.busy_us.iter().sum();
        let p: f64 = prio.busy_us.iter().sum();
        prop_assert!((b - p).abs() < 1e-6);
    }
}

#[test]
fn remote_latency_adds_to_chain() {
    // Deterministic check that the network actually delays dependencies.
    let mut b = DagBuilder::new();
    let s = b.add_node(NodeClass::S, 0, 0, 64);
    let m = b.add_node(NodeClass::M, 1, 1, 64);
    let t = b.add_node(NodeClass::T, 2, 2, 64);
    b.add_edge(s, EdgeOp::S2M, m, 64, 0);
    b.add_edge(m, EdgeOp::M2L, t, 64, 0);
    let mut dag = b.finish();
    dag.set_locality(1, 1);
    dag.set_locality(2, 0);
    let net = NetworkModel {
        latency_us: 100.0,
        bytes_per_us: f64::INFINITY,
        send_overhead_us: 0.0,
        remote_edge_overhead_us: 0.0,
        coalesce: CoalesceConfig::default(),
        ..NetworkModel::ideal()
    };
    let two = SimConfig {
        localities: 2,
        cores_per_locality: 1,
        priority: false,
        trace: false,
        levelwise: false,
    };
    let r = simulate(&dag, &unit_cost(), &net, &two);
    // Two hops of 100 µs latency plus 2×10 µs of edge work.
    assert!(
        (r.makespan_us - 220.0).abs() < 1e-6,
        "makespan {}",
        r.makespan_us
    );
    assert_eq!(r.messages, 2);
}
