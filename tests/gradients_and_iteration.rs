//! Field gradients and the iterative use case (paper §IV: the same DAG is
//! evaluated many times for different inputs, amortising the setup cost).

use dashmm::kernels::{Kernel, Laplace, Yukawa};
use dashmm::tree::{uniform_cube, Point3};
use dashmm::{DashmmBuilder, Method};

fn p3(points: &[Point3]) -> Vec<[f64; 3]> {
    points.iter().map(|p| [p.x, p.y, p.z]).collect()
}

/// Direct potential + gradient oracle.
fn direct_grad<K: Kernel>(
    kernel: &K,
    sources: &[[f64; 3]],
    charges: &[f64],
    t: &[f64; 3],
) -> (f64, [f64; 3]) {
    let mut p = 0.0;
    let mut g = [0.0; 3];
    for (s, &q) in sources.iter().zip(charges) {
        let d = [t[0] - s[0], t[1] - s[1], t[2] - s[2]];
        let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
        if r == 0.0 {
            continue;
        }
        p += q * kernel.eval(r);
        let dr = q * kernel.deriv(r) / r;
        for a in 0..3 {
            g[a] += dr * d[a];
        }
    }
    (p, g)
}

fn gradient_case<K: Kernel>(kernel: K, tol: f64) {
    let n = 900;
    let sources = uniform_cube(n, 41);
    let targets = uniform_cube(n, 42);
    let charges: Vec<f64> = (0..n).map(|i| 1.0 + (i % 4) as f64 * 0.3).collect();
    let out = DashmmBuilder::new(kernel.clone())
        .method(Method::AdvancedFmm)
        .threshold(20)
        .gradients(true)
        .build(&sources, &charges, &targets)
        .evaluate();
    let grads = out.gradients.expect("gradients requested");
    assert_eq!(grads.len(), n);
    let src = p3(&sources);
    // Gradient magnitudes are dominated by near-field contributions; use
    // the RMS gradient as the error scale.
    let mut num = 0.0;
    let mut den = 0.0;
    for i in (0..n).step_by(7) {
        let (p, g) = direct_grad(
            &kernel,
            &src,
            &charges,
            &[targets[i].x, targets[i].y, targets[i].z],
        );
        assert!(
            (out.potentials[i] - p).abs() / p.abs().max(1.0) < tol,
            "potential at {i}: {} vs {}",
            out.potentials[i],
            p
        );
        for a in 0..3 {
            num += (grads[i][a] - g[a]) * (grads[i][a] - g[a]);
            den += g[a] * g[a];
        }
    }
    let rel = (num / den).sqrt();
    assert!(rel < tol, "gradient relative L2 error {rel:.2e}");
}

#[test]
fn gradients_laplace() {
    gradient_case(Laplace, 2e-3);
}

#[test]
fn gradients_yukawa() {
    gradient_case(Yukawa::new(1.0), 2e-3);
}

#[test]
fn gradients_none_unless_requested() {
    let n = 300;
    let sources = uniform_cube(n, 43);
    let targets = uniform_cube(n, 44);
    let out = DashmmBuilder::new(Laplace)
        .threshold(20)
        .build(&sources, &vec![1.0; n], &targets)
        .evaluate();
    assert!(out.gradients.is_none());
}

#[test]
fn iterative_reevaluation_with_new_charges() {
    // Jacobi-style iteration: same geometry, changing charges.  Results of
    // evaluate_with_charges must equal a fresh build with those charges.
    let n = 800;
    let sources = uniform_cube(n, 45);
    let targets = uniform_cube(n, 46);
    let q0 = vec![1.0; n];
    let eval = DashmmBuilder::new(Laplace)
        .threshold(25)
        .machine(2, 2)
        .build(&sources, &q0, &targets);
    let setup_heavy = eval.tree_ms + eval.dag_ms;
    let _ = setup_heavy;

    for step in 1..4u32 {
        let q: Vec<f64> = (0..n)
            .map(|i| ((i as f64) * 0.01).sin() * step as f64)
            .collect();
        let got = eval.evaluate_with_charges(&q);
        let fresh = DashmmBuilder::new(Laplace)
            .threshold(25)
            .machine(2, 2)
            .build(&sources, &q, &targets)
            .evaluate();
        let scale = fresh.potentials.iter().map(|x| x.abs()).fold(1.0, f64::max);
        for i in 0..n {
            assert!(
                (got.potentials[i] - fresh.potentials[i]).abs() < 1e-11 * scale,
                "step {step}, target {i}: {} vs {}",
                got.potentials[i],
                fresh.potentials[i]
            );
        }
    }
}

#[test]
fn reevaluation_linearity_shortcut() {
    // evaluate_with_charges(2q) == 2 * evaluate_with_charges(q).
    let n = 500;
    let sources = uniform_cube(n, 47);
    let targets = uniform_cube(n, 48);
    let q: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
    let q2: Vec<f64> = q.iter().map(|x| 2.0 * x).collect();
    let eval = DashmmBuilder::new(Laplace)
        .threshold(20)
        .build(&sources, &q, &targets);
    let a = eval.evaluate_with_charges(&q);
    let b = eval.evaluate_with_charges(&q2);
    let scale = a.potentials.iter().map(|x| x.abs()).fold(1.0, f64::max);
    for i in 0..n {
        assert!((b.potentials[i] - 2.0 * a.potentials[i]).abs() < 1e-11 * scale);
    }
}
