//! End-to-end accuracy of every method × kernel × distribution combination
//! against the exact O(N²) oracle — the correctness contract of the whole
//! stack (trees → lists → expansions → DAG → runtime).

use dashmm::kernels::{direct_sum, Kernel, Laplace, Yukawa};
use dashmm::tree::{sphere_surface, uniform_cube, Point3};
use dashmm::{DashmmBuilder, Method};

fn p3(points: &[Point3]) -> Vec<[f64; 3]> {
    points.iter().map(|p| [p.x, p.y, p.z]).collect()
}

fn rel_l2(got: &[f64], want: &[f64]) -> f64 {
    let num: f64 = got.iter().zip(want).map(|(a, b)| (a - b) * (a - b)).sum();
    let den: f64 = want.iter().map(|b| b * b).sum();
    (num / den).sqrt()
}

fn run_case<K: Kernel>(
    kernel: K,
    method: Method,
    sources: &[Point3],
    targets: &[Point3],
    tol: f64,
    label: &str,
) {
    let charges: Vec<f64> = (0..sources.len())
        .map(|i| if i % 3 == 0 { 1.0 } else { -0.4 })
        .collect();
    let eval = DashmmBuilder::new(kernel.clone())
        .method(method)
        .threshold(20)
        .machine(2, 2)
        .build(sources, &charges, targets);
    let out = eval.evaluate();
    let want = direct_sum(&kernel, &p3(sources), &charges, &p3(targets), 0);
    let err = rel_l2(&out.potentials, &want);
    assert!(
        err < tol,
        "{label}: relative L2 error {err:.2e} exceeds {tol:.0e}"
    );
}

const N: usize = 900;

#[test]
fn advanced_fmm_laplace_cube() {
    run_case(
        Laplace,
        Method::AdvancedFmm,
        &uniform_cube(N, 1),
        &uniform_cube(N, 2),
        1e-3,
        "advanced/laplace/cube",
    );
}

#[test]
fn advanced_fmm_laplace_sphere() {
    run_case(
        Laplace,
        Method::AdvancedFmm,
        &sphere_surface(N, 3),
        &sphere_surface(N, 4),
        1e-3,
        "advanced/laplace/sphere",
    );
}

#[test]
fn advanced_fmm_yukawa_cube() {
    run_case(
        Yukawa::new(1.5),
        Method::AdvancedFmm,
        &uniform_cube(N, 5),
        &uniform_cube(N, 6),
        1e-3,
        "advanced/yukawa/cube",
    );
}

#[test]
fn advanced_fmm_yukawa_sphere() {
    run_case(
        Yukawa::new(0.8),
        Method::AdvancedFmm,
        &sphere_surface(N, 7),
        &sphere_surface(N, 8),
        1e-3,
        "advanced/yukawa/sphere",
    );
}

#[test]
fn basic_fmm_laplace_cube() {
    run_case(
        Laplace,
        Method::BasicFmm,
        &uniform_cube(N, 9),
        &uniform_cube(N, 10),
        1e-3,
        "basic/laplace/cube",
    );
}

#[test]
fn basic_fmm_yukawa_sphere() {
    run_case(
        Yukawa::new(1.0),
        Method::BasicFmm,
        &sphere_surface(N, 11),
        &sphere_surface(N, 12),
        1e-3,
        "basic/yukawa/sphere",
    );
}

#[test]
fn barnes_hut_laplace_cube() {
    run_case(
        Laplace,
        Method::BarnesHut { theta: 0.5 },
        &uniform_cube(N, 13),
        &uniform_cube(N, 14),
        6e-3,
        "bh/laplace/cube",
    );
}

#[test]
fn identical_ensembles_self_interaction_excluded() {
    // Traditional N-body: sources == targets; the potential at a point
    // must exclude that point's own charge.
    let pts = uniform_cube(700, 15);
    run_case(
        Laplace,
        Method::AdvancedFmm,
        &pts,
        &pts,
        1e-3,
        "advanced/identical",
    );
}

#[test]
fn disjoint_ensembles() {
    // Fully disjoint clusters (paper §II: ensembles can be disjoint, and
    // the dual trees then classify interactions at coarse levels).
    let mut sources = uniform_cube(600, 16);
    for p in &mut sources {
        p.x = p.x * 0.3 - 0.7;
    }
    let mut targets = uniform_cube(600, 17);
    for p in &mut targets {
        p.x = p.x * 0.3 + 0.7;
    }
    run_case(
        Laplace,
        Method::AdvancedFmm,
        &sources,
        &targets,
        1e-3,
        "advanced/disjoint",
    );
}

#[test]
fn partially_overlapping_ensembles() {
    let sources = uniform_cube(600, 18);
    let mut targets = uniform_cube(600, 19);
    for p in &mut targets {
        p.x += 0.8; // shifted cube: partial overlap
    }
    run_case(
        Laplace,
        Method::AdvancedFmm,
        &sources,
        &targets,
        1e-3,
        "advanced/overlap",
    );
}

#[test]
fn six_digit_preset_is_tighter() {
    let sources = uniform_cube(600, 20);
    let targets = uniform_cube(600, 21);
    let charges = vec![1.0; 600];
    let want = direct_sum(&Laplace, &p3(&sources), &charges, &p3(&targets), 0);
    let err = |acc| {
        let out = DashmmBuilder::new(Laplace)
            .accuracy(acc)
            .threshold(20)
            .build(&sources, &charges, &targets)
            .evaluate();
        rel_l2(&out.potentials, &want)
    };
    let e3 = err(dashmm::expansion::AccuracyParams::three_digit());
    let e6 = err(dashmm::expansion::AccuracyParams::six_digit());
    assert!(e6 < 1e-5, "six-digit preset: {e6:.2e}");
    assert!(
        e6 < e3 / 10.0,
        "six digits ({e6:.2e}) must beat three ({e3:.2e}) by ≥ 10x"
    );
}
