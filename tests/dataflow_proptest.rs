//! Property-based tests of the AMT runtime's dataflow semantics: for an
//! arbitrary weighted DAG of summing LCOs, executing it through the
//! runtime — under any worker count, locality count, or priority setting —
//! must produce exactly the values of a sequential reference evaluation.

use std::sync::Arc;

use dashmm::runtime::{LcoSpec, ObsLevel, Parcel, Priority, Runtime, RuntimeConfig, TaskCtx};
use proptest::prelude::*;

/// A random layered DAG: `layers` of up to `width` nodes; each non-seed
/// node sums `weight * value` over its in-edges.
#[derive(Clone, Debug)]
struct RandomDag {
    /// Per node: list of (source node, weight).
    in_edges: Vec<Vec<(usize, f64)>>,
    /// Seed values for nodes with no inputs.
    seeds: Vec<f64>,
}

impl RandomDag {
    /// Sequential reference evaluation.
    fn reference(&self) -> Vec<f64> {
        let n = self.in_edges.len();
        let mut val = vec![0.0f64; n];
        for i in 0..n {
            if self.in_edges[i].is_empty() {
                val[i] = self.seeds[i];
            } else {
                // Nodes are layered: sources always have smaller indices.
                val[i] = self.in_edges[i].iter().map(|&(s, w)| w * val[s]).sum();
            }
        }
        val
    }
}

fn random_dag() -> impl Strategy<Value = RandomDag> {
    // 2-5 layers, 1-6 nodes each, edges from the previous layers only.
    (2usize..5, 1usize..6, any::<u64>()).prop_map(|(layers, width, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut in_edges: Vec<Vec<(usize, f64)>> = Vec::new();
        let mut layer_start = 0;
        for layer in 0..layers {
            let count = 1 + (next() as usize) % width;
            let prev_end = layer_start;
            let start = in_edges.len();
            for _ in 0..count {
                let mut edges = Vec::new();
                if layer > 0 {
                    // 1..=3 random inputs from any earlier node.
                    let k = 1 + (next() as usize) % 3;
                    for _ in 0..k {
                        let src = (next() as usize) % prev_end;
                        let w = ((next() % 9) as f64 - 4.0) / 2.0;
                        edges.push((src, w));
                    }
                }
                in_edges.push(edges);
            }
            let _ = start;
            layer_start = in_edges.len();
        }
        let seeds = (0..in_edges.len())
            .map(|i| (i as f64) * 0.5 + 1.0)
            .collect();
        RandomDag { in_edges, seeds }
    })
}

/// Execute the random DAG on the runtime and return every node's value.
fn run_on_runtime(dag: &RandomDag, localities: usize, workers: usize, priority: bool) -> Vec<f64> {
    let rt = Runtime::new(RuntimeConfig {
        localities,
        workers_per_locality: workers,
        priority_scheduling: priority,
        obs: ObsLevel::Off,
    });
    let n = dag.in_edges.len();
    // Out-edge lists (the runtime is producer-driven, like DASHMM).
    let mut out_edges: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for (dst, ins) in dag.in_edges.iter().enumerate() {
        for &(src, w) in ins {
            out_edges[src].push((dst, w));
        }
    }
    let out_edges = Arc::new(out_edges);

    // One LCO per node, round-robin across localities.
    let mut lcos = Vec::with_capacity(n);
    for (i, ins) in dag.in_edges.iter().enumerate() {
        let loc = (i % localities) as u32;
        let inputs = ins.len().max(1) as u32; // seeds get one set
        lcos.push(rt.lco_new(loc, LcoSpec::reduce_sum(1, inputs)));
    }
    let lcos = Arc::new(lcos);

    // Each node's trigger propagates its value along its out-edges.  We use
    // continuations-with-data plus a forwarding action so values cross
    // localities as parcels, exactly like the expansion DAG.
    let forward = {
        let out_edges = Arc::clone(&out_edges);
        let lcos = Arc::clone(&lcos);
        rt.register_action(Arc::new(move |ctx: &TaskCtx, target, payload: &[u8]| {
            // payload = edge index (u32) then the LCO data (1 f64).
            let node = u32::from_le_bytes(payload[0..4].try_into().unwrap()) as usize;
            let value = f64::from_le_bytes(payload[4..12].try_into().unwrap());
            let _ = target;
            for &(dst, w) in &out_edges[node] {
                ctx.lco_set(lcos[dst], &[w * value]);
            }
        }))
    };
    for i in 0..n {
        let mut payload = (i as u32).to_le_bytes().to_vec();
        // Continuation appends the LCO data after our 4-byte header.
        let parcel = Parcel {
            action: forward,
            target: lcos[i],
            payload: std::mem::take(&mut payload),
            priority: if priority && i % 2 == 0 {
                Priority::High
            } else {
                Priority::Normal
            },
        };
        let lco = lcos[i];
        rt.seed(lco.locality, {
            let parcel = parcel.clone();
            move |ctx| ctx.register_continuation(lco, parcel, true)
        });
    }
    // Seed values.
    for (i, ins) in dag.in_edges.iter().enumerate() {
        if ins.is_empty() {
            let lco = lcos[i];
            let v = dag.seeds[i];
            rt.seed(lco.locality, move |ctx| ctx.lco_set(lco, &[v]));
        }
    }
    rt.run();
    (0..n)
        .map(|i| rt.lco_get(lcos[i]).expect("all LCOs must trigger")[0])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn runtime_matches_reference(dag in random_dag(), workers in 1usize..4) {
        let want = dag.reference();
        let got = run_on_runtime(&dag, 1, workers, false);
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-9, "got {g}, want {w}");
        }
    }

    #[test]
    fn distribution_is_transparent(dag in random_dag(), localities in 2usize..5) {
        let want = dag.reference();
        let got = run_on_runtime(&dag, localities, 2, false);
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-9, "got {g}, want {w}");
        }
    }

    #[test]
    fn priority_scheduling_is_semantics_preserving(dag in random_dag()) {
        let want = dag.reference();
        let got = run_on_runtime(&dag, 2, 2, true);
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-9, "got {g}, want {w}");
        }
    }
}
