//! Parameter sweeps: the *answer* must be invariant to the refinement
//! threshold (it only trades tree depth against leaf work), and Barnes–Hut
//! accuracy must improve monotonically-ish as θ tightens.

use dashmm::kernels::{direct_sum, Laplace};
use dashmm::tree::{uniform_cube, Point3};
use dashmm::{DashmmBuilder, Method};

fn p3(points: &[Point3]) -> Vec<[f64; 3]> {
    points.iter().map(|p| [p.x, p.y, p.z]).collect()
}

fn rel_l2(got: &[f64], want: &[f64]) -> f64 {
    let num: f64 = got.iter().zip(want).map(|(a, b)| (a - b) * (a - b)).sum();
    let den: f64 = want.iter().map(|b| b * b).sum();
    (num / den).sqrt()
}

#[test]
fn accuracy_is_threshold_invariant() {
    // The refinement threshold changes the tree (deeper vs shallower), the
    // DAG (more M2L levels vs more P2P) — but not the answer's accuracy.
    let n = 1200;
    let sources = uniform_cube(n, 61);
    let targets = uniform_cube(n, 62);
    let charges: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
    let want = direct_sum(&Laplace, &p3(&sources), &charges, &p3(&targets), 0);
    for threshold in [10, 30, 60, 150] {
        let out = DashmmBuilder::new(Laplace)
            .method(Method::AdvancedFmm)
            .threshold(threshold)
            .build(&sources, &charges, &targets)
            .evaluate();
        let e = rel_l2(&out.potentials, &want);
        assert!(e < 1e-3, "threshold {threshold}: error {e:.2e}");
    }
}

#[test]
fn threshold_trades_tree_depth_for_leaf_work() {
    let n = 5000;
    let sources = uniform_cube(n, 63);
    let targets = uniform_cube(n, 64);
    let charges = vec![1.0; n];
    let build = |t: usize| {
        DashmmBuilder::new(Laplace)
            .method(Method::AdvancedFmm)
            .threshold(t)
            .build(&sources, &charges, &targets)
    };
    let fine = build(10);
    let coarse = build(200);
    assert!(
        fine.problem().tree.source().depth() > coarse.problem().tree.source().depth(),
        "smaller threshold must refine deeper"
    );
    assert!(
        fine.dag().num_nodes() > coarse.dag().num_nodes(),
        "smaller threshold must create more DAG nodes"
    );
}

#[test]
fn barnes_hut_error_decreases_with_theta() {
    let n = 1500;
    let sources = uniform_cube(n, 65);
    let targets = uniform_cube(n, 66);
    let charges = vec![1.0; n];
    let want = direct_sum(&Laplace, &p3(&sources), &charges, &p3(&targets), 0);
    let mut errors = Vec::new();
    for theta in [0.9, 0.6, 0.3] {
        let out = DashmmBuilder::new(Laplace)
            .method(Method::BarnesHut { theta })
            .threshold(30)
            .build(&sources, &charges, &targets)
            .evaluate();
        errors.push(rel_l2(&out.potentials, &want));
    }
    // Tightening θ must not make things worse (allow small noise floor).
    assert!(
        errors[1] <= errors[0] * 1.2 && errors[2] <= errors[1] * 1.2,
        "errors not improving with θ: {errors:?}"
    );
    assert!(
        errors[2] < 2e-3,
        "θ = 0.3 should be quite accurate: {:.2e}",
        errors[2]
    );
}

#[test]
fn barnes_hut_work_grows_as_theta_shrinks() {
    let n = 4000;
    let sources = uniform_cube(n, 67);
    let targets = uniform_cube(n, 68);
    let charges = vec![1.0; n];
    let edges = |theta: f64| {
        DashmmBuilder::new(Laplace)
            .method(Method::BarnesHut { theta })
            .threshold(60)
            .build(&sources, &charges, &targets)
            .dag()
            .num_edges()
    };
    let loose = edges(0.8);
    let tight = edges(0.3);
    assert!(
        tight > loose,
        "tighter θ must do more work: {tight} vs {loose}"
    );
}

#[test]
fn methods_agree_with_each_other() {
    // Basic FMM and advanced FMM approximate the same mathematics; their
    // answers must agree to the accuracy target without consulting the
    // oracle at all.
    let n = 1500;
    let sources = uniform_cube(n, 69);
    let targets = uniform_cube(n, 70);
    let charges: Vec<f64> = (0..n).map(|i| ((i * 31 % 17) as f64 - 8.0) / 8.0).collect();
    let run = |m: Method| {
        DashmmBuilder::new(Laplace)
            .method(m)
            .threshold(30)
            .build(&sources, &charges, &targets)
            .evaluate()
            .potentials
    };
    let basic = run(Method::BasicFmm);
    let advanced = run(Method::AdvancedFmm);
    let e = rel_l2(&advanced, &basic);
    assert!(e < 2e-3, "methods disagree: {e:.2e}");
}
