//! Invariance properties of the full evaluator: the *answer* must not
//! depend on how the evaluation is parallelised, distributed, scheduled, or
//! which policy placed the DAG — only on the mathematical problem.

use dashmm::kernels::Laplace;
use dashmm::tree::{uniform_cube, Point3};
use dashmm::{api::Policy, DashmmBuilder, Method};
use proptest::prelude::*;

fn evaluate(
    sources: &[Point3],
    targets: &[Point3],
    charges: &[f64],
    localities: usize,
    workers: usize,
    policy: Policy,
    priority: bool,
) -> Vec<f64> {
    DashmmBuilder::new(Laplace)
        .method(Method::AdvancedFmm)
        .threshold(20)
        .machine(localities, workers)
        .policy(policy)
        .priority(priority)
        .build(sources, charges, targets)
        .evaluate()
        .potentials
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Scale for comparing potentials (they are O(N) in magnitude).
fn scale(v: &[f64]) -> f64 {
    v.iter().map(|x| x.abs()).fold(0.0, f64::max).max(1.0)
}

#[test]
fn invariant_under_machine_shape() {
    let n = 700;
    let sources = uniform_cube(n, 31);
    let targets = uniform_cube(n, 32);
    let charges: Vec<f64> = (0..n).map(|i| ((i % 7) as f64 - 3.0) / 3.0).collect();
    let base = evaluate(&sources, &targets, &charges, 1, 1, Policy::Fmm, false);
    for (loc, wrk) in [(1, 3), (2, 2), (4, 1), (3, 2)] {
        let other = evaluate(&sources, &targets, &charges, loc, wrk, Policy::Fmm, false);
        let d = max_abs_diff(&base, &other) / scale(&base);
        assert!(
            d < 1e-12,
            "machine ({loc},{wrk}) changed results by {d:.2e}"
        );
    }
}

#[test]
fn invariant_under_policy() {
    let n = 700;
    let sources = uniform_cube(n, 33);
    let targets = uniform_cube(n, 34);
    let charges = vec![0.5; n];
    let base = evaluate(&sources, &targets, &charges, 3, 1, Policy::Single, false);
    for policy in [Policy::Block, Policy::Fmm] {
        let other = evaluate(&sources, &targets, &charges, 3, 1, policy, false);
        let d = max_abs_diff(&base, &other) / scale(&base);
        assert!(d < 1e-12, "policy {policy:?} changed results by {d:.2e}");
    }
}

#[test]
fn invariant_under_priority_scheduling() {
    let n = 600;
    let sources = uniform_cube(n, 35);
    let targets = uniform_cube(n, 36);
    let charges = vec![1.0; n];
    let a = evaluate(&sources, &targets, &charges, 2, 2, Policy::Fmm, false);
    let b = evaluate(&sources, &targets, &charges, 2, 2, Policy::Fmm, true);
    let d = max_abs_diff(&a, &b) / scale(&a);
    assert!(d < 1e-12, "priority changed results by {d:.2e}");
}

#[test]
fn rebuilt_evaluations_are_bitwise_identical() {
    // DAG assembly is deterministic (ordered containers throughout), so two
    // independent builds of the same problem must agree bit for bit when
    // executed on a single worker, where the reduction order is also
    // deterministic.  (Across threads the floating-point reduction order
    // may legitimately vary at the 1e-15 level; see the other tests.)
    let n = 600;
    let sources = uniform_cube(n, 91);
    let targets = uniform_cube(n, 92);
    let charges = vec![1.0; n];
    let a = evaluate(&sources, &targets, &charges, 1, 1, Policy::Fmm, false);
    let b = evaluate(&sources, &targets, &charges, 1, 1, Policy::Fmm, false);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
    }
}

#[test]
fn linearity_in_charges() {
    // φ(q1 + q2) = φ(q1) + φ(q2): the whole pipeline is linear.
    let n = 500;
    let sources = uniform_cube(n, 37);
    let targets = uniform_cube(n, 38);
    let q1: Vec<f64> = (0..n).map(|i| (i % 3) as f64).collect();
    let q2: Vec<f64> = (0..n).map(|i| ((i + 1) % 4) as f64 * 0.25).collect();
    let qs: Vec<f64> = q1.iter().zip(&q2).map(|(a, b)| a + b).collect();
    let f1 = evaluate(&sources, &targets, &q1, 1, 2, Policy::Fmm, false);
    let f2 = evaluate(&sources, &targets, &q2, 1, 2, Policy::Fmm, false);
    let fs = evaluate(&sources, &targets, &qs, 1, 2, Policy::Fmm, false);
    for i in 0..n {
        let want = f1[i] + f2[i];
        assert!(
            (fs[i] - want).abs() < 1e-9 * scale(&fs),
            "linearity violated at {i}: {} vs {}",
            fs[i],
            want
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random clustered point sets: evaluation on different machines must
    /// agree bit-for-bit-ish regardless of geometry pathologies.
    #[test]
    fn invariance_on_random_clustered_data(seed in 0u64..1000, clusters in 1usize..4) {
        let mut sources = Vec::new();
        let mut rng = seed;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            (rng >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for c in 0..clusters {
            let center = Point3::new(next() * 2.0, next() * 2.0, next() * 2.0);
            let spread = 0.05 + 0.3 * ((c + 1) as f64 / clusters as f64);
            for _ in 0..150 {
                sources.push(center + Point3::new(next(), next(), next()) * spread);
            }
        }
        let targets: Vec<Point3> = sources.iter().map(|p| *p + Point3::new(0.01, -0.02, 0.015)).collect();
        let charges = vec![1.0; sources.len()];
        let a = evaluate(&sources, &targets, &charges, 1, 2, Policy::Fmm, false);
        let b = evaluate(&sources, &targets, &charges, 3, 1, Policy::Block, false);
        let d = max_abs_diff(&a, &b) / scale(&a);
        prop_assert!(d < 1e-12, "distribution changed results by {d:.2e}");
    }
}
