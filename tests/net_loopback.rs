//! End-to-end multi-process run over the real socket transport: two
//! localities as OS processes on loopback, two workers each, evaluating
//! the same Laplace problem SPMD-style.  Rank 0 gathers the partial
//! potentials and verifies the merged result against a single-process
//! evaluation to machine precision.
//!
//! This file must contain exactly ONE `#[test]`: the launcher re-executes
//! `current_exe()` — this libtest binary — once per locality, and the
//! child processes (steered by `DASHMM_NET_RANK`) must re-enter the same
//! test body and nothing else.

use std::sync::Arc;

use dashmm::kernels::Laplace;
use dashmm::tree::uniform_cube;
use dashmm::{DashmmBuilder, Method};
use dashmm_amt::{CoalesceConfig, Transport};
use dashmm_net::{bootstrap, f64s_to_bytes, merge_sum_f64, Role};

const LOCALITIES: u32 = 2;
const WORKERS: usize = 2;

fn rel_err(got: &[f64], want: &[f64]) -> f64 {
    let num: f64 = got.iter().zip(want).map(|(a, b)| (a - b) * (a - b)).sum();
    let den: f64 = want.iter().map(|b| b * b).sum();
    (num / den).sqrt()
}

#[test]
fn two_locality_loopback_matches_single_process() {
    let transport = match bootstrap(LOCALITIES, CoalesceConfig::default()) {
        Ok(Role::Launcher(report)) => {
            // Parent process: the ranks did the work; their exit statuses
            // carry the verdict.
            for (rank, st) in &report.statuses {
                assert!(st.success(), "locality {rank} failed: {st}");
            }
            return;
        }
        Ok(Role::Rank(t)) => t,
        Err(e) => panic!("bootstrap failed: {e}"),
    };

    // Rank process (re-executed test binary).  Panics still fail the run —
    // they unwind past the exit calls below and the process dies nonzero.
    let n = 2500;
    let sources = uniform_cube(n, 91);
    let targets = uniform_cube(n, 92);
    let charges: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();

    let out = DashmmBuilder::new(Laplace)
        .method(Method::AdvancedFmm)
        .threshold(40)
        .machine(LOCALITIES as usize, WORKERS)
        .transport(Arc::clone(&transport) as Arc<dyn Transport>)
        .build(&sources, &charges, &targets)
        .evaluate();

    let parts = transport
        .gather(&f64s_to_bytes(&out.potentials))
        .expect("gather");
    let mut ok = true;
    if let Some(parts) = parts {
        // Rank 0: merge and verify.
        let merged = merge_sum_f64(&parts);
        let reference = DashmmBuilder::new(Laplace)
            .method(Method::AdvancedFmm)
            .threshold(40)
            .machine(1, WORKERS)
            .build(&sources, &charges, &targets)
            .evaluate();
        let e = rel_err(&merged, &reference.potentials);
        ok &= e < 1e-12;
        if !ok {
            eprintln!("merged potentials diverge: rel err {e:.2e}");
        }
        // The run must actually have communicated.
        let m = transport.metrics();
        if !m.per_dest.iter().any(|d| d.parcels > 0) {
            eprintln!("no parcels crossed the transport");
            ok = false;
        }
    }
    transport.barrier().expect("final barrier");
    transport.shutdown();
    std::process::exit(if ok { 0 } else { 1 });
}
