//! Cross-validation of the discrete-event simulator against the real
//! threaded runtime: both execute the *same explicit DAG*, and every edge
//! is applied exactly once in each, so the per-operator-class event counts
//! of a traced real run and a traced simulated run must agree exactly.

use dashmm::dag::EdgeOp;
use dashmm::expansion::{AccuracyParams, OperatorLibrary};
use dashmm::kernels::Laplace;
use dashmm::sim::{simulate, CostModel, NetworkModel, SimConfig};
use dashmm::tree::{uniform_cube, BuildParams};
use dashmm::{assemble, DashmmBuilder, Method, Problem};

fn class_counts(trace: &dashmm::runtime::TraceSet) -> [u64; EdgeOp::COUNT] {
    let mut counts = [0u64; EdgeOp::COUNT];
    for e in trace.all_events() {
        if (e.class as usize) < EdgeOp::COUNT {
            counts[e.class as usize] += 1;
        }
    }
    counts
}

#[test]
fn simulator_and_runtime_execute_identical_edge_sets() {
    let n = 3000;
    let sources = uniform_cube(n, 81);
    let targets = uniform_cube(n, 82);
    let charges = vec![1.0; n];

    // Real runtime, traced.
    let real = DashmmBuilder::new(Laplace)
        .method(Method::AdvancedFmm)
        .threshold(40)
        .machine(2, 1)
        .tracing(true)
        .build(&sources, &charges, &targets)
        .evaluate();
    let real_counts = class_counts(&real.report.trace);

    // Simulator over the equivalent explicit DAG (same seeds, same
    // threshold, same method ⇒ same DAG shape).
    let problem = Problem::new(
        &sources,
        &charges,
        &targets,
        BuildParams {
            threshold: 40,
            max_level: 20,
        },
    );
    let lib = OperatorLibrary::new(
        Laplace,
        AccuracyParams::three_digit(),
        problem.tree.domain().side(),
        true,
    );
    let asm = assemble(&problem, Method::AdvancedFmm, &lib);
    let cfg = SimConfig {
        localities: 2,
        cores_per_locality: 1,
        priority: false,
        levelwise: false,
        trace: true,
    };
    let sim = simulate(
        &asm.dag,
        &CostModel::paper_table2(),
        &NetworkModel::gemini(),
        &cfg,
    );
    let sim_counts = class_counts(&sim.trace);

    for op in EdgeOp::ALL {
        assert_eq!(
            real_counts[op.index()],
            sim_counts[op.index()],
            "event count mismatch for {}: real {} vs sim {}",
            op.name(),
            real_counts[op.index()],
            sim_counts[op.index()]
        );
    }
    // And both match the explicit DAG's edge census.
    let stats = dashmm::dag::DagStats::compute(&asm.dag);
    for op in EdgeOp::ALL {
        assert_eq!(
            sim_counts[op.index()],
            stats.edges[op.index()].count,
            "sim trace does not match DAG census for {}",
            op.name()
        );
    }
}

#[test]
fn simulator_work_conservation_matches_cost_model() {
    // Total traced virtual time must equal Σ (edge count × op cost).
    let n = 2000;
    let sources = uniform_cube(n, 83);
    let targets = uniform_cube(n, 84);
    let charges = vec![1.0; n];
    let problem = Problem::new(
        &sources,
        &charges,
        &targets,
        BuildParams {
            threshold: 40,
            max_level: 20,
        },
    );
    let lib = OperatorLibrary::new(
        Laplace,
        AccuracyParams::three_digit(),
        problem.tree.domain().side(),
        true,
    );
    let asm = assemble(&problem, Method::AdvancedFmm, &lib);
    let cost = CostModel::paper_table2();
    let cfg = SimConfig {
        localities: 1,
        cores_per_locality: 4,
        priority: false,
        levelwise: false,
        trace: true,
    };
    let r = simulate(&asm.dag, &cost, &NetworkModel::ideal(), &cfg);
    let traced_us: f64 = r
        .trace
        .all_events()
        .map(|e| (e.end_ns - e.start_ns) as f64 / 1000.0)
        .sum();
    let stats = dashmm::dag::DagStats::compute(&asm.dag);
    let expected: f64 = EdgeOp::ALL
        .iter()
        .map(|&op| stats.edges[op.index()].count as f64 * cost.op_us[op.index()])
        .sum();
    let rel = (traced_us - expected).abs() / expected;
    assert!(
        rel < 1e-6,
        "traced {traced_us} vs expected {expected} (rel {rel:.2e})"
    );
}
