//! Trace analysis on the *real* runtime (not the simulator): the
//! utilization machinery of paper §V-B applied to actual execution.

use dashmm::dag::EdgeOp;
use dashmm::kernels::Laplace;
use dashmm::runtime::{utilization_by_class, utilization_total};
use dashmm::tree::uniform_cube;
use dashmm::{per_op_avg_us, DashmmBuilder, Method};

#[test]
fn traced_real_run_supports_utilization_analysis() {
    let n = 4000;
    let sources = uniform_cube(n, 51);
    let targets = uniform_cube(n, 52);
    let charges = vec![1.0; n];
    let out = DashmmBuilder::new(Laplace)
        .method(Method::AdvancedFmm)
        .threshold(40)
        .machine(2, 1)
        .tracing(true)
        .build(&sources, &charges, &targets)
        .evaluate();
    let trace = &out.report.trace;
    assert!(!trace.is_empty());

    // Utilization fractions are bounded by 1 per interval.
    let m = 20;
    let u = utilization_total(trace, m);
    assert_eq!(u.len(), m);
    for (k, &f) in u.iter().enumerate() {
        assert!((0.0..=1.0 + 1e-9).contains(&f), "f[{k}] = {f}");
    }
    // The per-class split sums to the total.
    let by = utilization_by_class(trace, m, EdgeOp::COUNT);
    for k in 0..m {
        let s: f64 = by.iter().map(|row| row[k]).sum();
        assert!((s - u[k]).abs() < 1e-9);
    }
    // The advanced FMM exercises the expected operator classes.
    for op in [
        EdgeOp::S2M,
        EdgeOp::M2M,
        EdgeOp::M2I,
        EdgeOp::I2I,
        EdgeOp::I2L,
        EdgeOp::L2L,
        EdgeOp::L2T,
        EdgeOp::S2T,
    ] {
        let active: f64 = by[op.index()].iter().sum();
        assert!(active > 0.0, "{} never appeared in the trace", op.name());
    }
}

#[test]
fn measured_operator_costs_have_the_papers_ordering() {
    // The qualitative cost structure of Table II must hold for real
    // measured timings: the per-edge I→I diagonal translation is the
    // cheapest expansion operator, M→I / I→L the heaviest.
    let n = 20_000;
    let sources = uniform_cube(n, 53);
    let targets = uniform_cube(n, 54);
    let charges = vec![1.0; n];
    let out = DashmmBuilder::new(Laplace)
        .method(Method::AdvancedFmm)
        .threshold(60)
        .machine(1, 1)
        .tracing(true)
        .build(&sources, &charges, &targets)
        .evaluate();
    let avg = per_op_avg_us(&out.report.trace);
    let g = |o: EdgeOp| avg[o.index()];
    assert!(g(EdgeOp::I2I) > 0.0 && g(EdgeOp::M2I) > 0.0);
    assert!(
        g(EdgeOp::I2I) < g(EdgeOp::M2I),
        "I→I {} vs M→I {}",
        g(EdgeOp::I2I),
        g(EdgeOp::M2I)
    );
    assert!(
        g(EdgeOp::I2I) < g(EdgeOp::I2L),
        "I→I {} vs I→L {}",
        g(EdgeOp::I2I),
        g(EdgeOp::I2L)
    );
    assert!(
        g(EdgeOp::M2M) < g(EdgeOp::M2I),
        "M→M {} vs M→I {}",
        g(EdgeOp::M2M),
        g(EdgeOp::M2I)
    );
    assert!(
        g(EdgeOp::L2L) < g(EdgeOp::I2L),
        "L→L {} vs I→L {}",
        g(EdgeOp::L2L),
        g(EdgeOp::I2L)
    );
}
